(* qs_lint rule tests: one positive fixture (violation found) and one
   negative fixture (exempt path or allow attribute) per rule family,
   running the analyzer on in-memory sources. *)

module Lint = Qs_analysis.Lint

let rules_of ~path contents =
  List.map (fun f -> f.Lint.rule) (Lint.lint_source ~path ~contents)

let check_rules name expected ~path contents =
  Alcotest.(check (list string)) name expected (rules_of ~path contents)

(* --- QS001: raw page bytes --- *)

let qs001_src = "let f b = Bytes.get b 0\nlet g b = Bytes.set b 1 'x'\n"

let test_qs001 () =
  check_rules "flagged in lib/core" [ "QS001"; "QS001" ] ~path:"lib/core/foo.ml" qs001_src;
  check_rules "blit too" [ "QS001" ] ~path:"lib/core/foo.ml"
    "let h a b = Bytes.blit a 0 b 0 8\n";
  check_rules "byte core exempt" [] ~path:"lib/esm/page.ml" qs001_src;
  check_rules "codec exempt" [] ~path:"lib/util/codec.ml" qs001_src;
  check_rules "vmsim exempt" [] ~path:"lib/vmsim/vmsim.ml" qs001_src;
  check_rules "file allow" [] ~path:"lib/core/foo.ml"
    ("[@@@qs_lint.allow \"QS001\"]\n" ^ qs001_src);
  check_rules "expression allow" [] ~path:"lib/core/foo.ml"
    "let f b = (Bytes.get b 0 [@qs_lint.allow \"QS001\"])\n";
  check_rules "expression allow is scoped" [ "QS001" ] ~path:"lib/core/foo.ml"
    "let f b = (Bytes.get b 0 [@qs_lint.allow \"QS001\"])\nlet g b = Bytes.get b 1\n";
  check_rules "unrelated Bytes ops pass" [] ~path:"lib/core/foo.ml"
    "let f b = Bytes.length b + Bytes.length (Bytes.copy b)\n"

(* --- QS002: Obj.magic --- *)

let test_qs002 () =
  check_rules "flagged everywhere" [ "QS002" ] ~path:"lib/esm/page.ml"
    "let f (x : int) : string = Obj.magic x\n";
  check_rules "flagged in bin" [ "QS002" ] ~path:"bin/main.ml" "let f x = Obj.magic x\n";
  check_rules "allow attribute" [] ~path:"bin/main.ml"
    "let f x = (Obj.magic x [@qs_lint.allow \"QS002\"])\n";
  check_rules "Obj.repr untouched" [] ~path:"bin/main.ml" "let f x = Obj.repr x\n"

(* --- QS003: polymorphic compare on identity values --- *)

let test_qs003 () =
  check_rules "oid = oid" [ "QS003" ] ~path:"lib/core/foo.ml"
    "let f oid other_oid = oid = other_oid\n";
  check_rules "suffix _oid" [ "QS003" ] ~path:"lib/core/foo.ml"
    "let f root_oid x = x <> root_oid\n";
  check_rules "compare on ptrs" [ "QS003" ] ~path:"lib/core/foo.ml"
    "let f a_ptr b_ptr = compare a_ptr b_ptr\n";
  check_rules "hash on desc" [ "QS003" ] ~path:"lib/core/foo.ml"
    "let f desc = Hashtbl.hash desc\n";
  check_rules "field access operand" [ "QS003" ] ~path:"lib/core/foo.ml"
    "let f e x = x = e.oid\n";
  check_rules "Oid.null operand" [ "QS003" ] ~path:"lib/core/foo.ml"
    "let f x = x = Oid.null\n";
  check_rules "Oid.equal is the fix" [] ~path:"lib/core/foo.ml"
    "let f oid other_oid = Oid.equal oid other_oid\n";
  check_rules "neutral names pass" [] ~path:"lib/core/foo.ml" "let f a b = a = b\n";
  check_rules "int compare passes" [] ~path:"lib/core/foo.ml"
    "let f (page : int) n = compare page n\n"

(* --- QS004: gated calls (cost-charge bypasses) --- *)

let test_qs004 () =
  check_rules "set_prot_free in lib/core" [ "QS004" ] ~path:"lib/core/foo.ml"
    "let f vm = Vmsim.set_prot_free vm ~frame:0 Vmsim.Prot_write\n";
  check_rules "clock reset in lib/esm" [ "QS004" ] ~path:"lib/esm/foo.ml"
    "let f c = Clock.reset c\n";
  check_rules "harness exempt" [] ~path:"lib/harness/runner.ml"
    "let f vm c = Vmsim.set_prot_free vm ~frame:0 Vmsim.Prot_read; Clock.reset c\n";
  check_rules "vmsim exempt" [] ~path:"lib/vmsim/vmsim.ml" "let f t = set_prot_free t\n";
  check_rules "test exempt" [] ~path:"test/test_foo.ml" "let f c = Clock.reset c\n";
  check_rules "file allow" [] ~path:"examples/demo.ml"
    "[@@@qs_lint.allow \"QS004\"]\nlet f c = Clock.reset c\n";
  check_rules "unqualified reset passes" [] ~path:"lib/core/foo.ml" "let f h = reset h\n"

(* --- QS005: fault handler without cost charging --- *)

let test_qs005 () =
  check_rules "handler, no charge" [ "QS005" ] ~path:"lib/core/foo.ml"
    "let f vm h = Vmsim.set_fault_handler vm h\n";
  check_rules "handler plus charge" [] ~path:"lib/core/foo.ml"
    "let f vm h clock = Vmsim.set_fault_handler vm h; Qs_trace.charge clock 1\n";
  check_rules "charge_n counts" [] ~path:"lib/core/foo.ml"
    "let f vm h clock = Vmsim.set_fault_handler vm h; Qs_trace.charge_n clock 2 3\n";
  check_rules "test exempt" [] ~path:"test/test_foo.ml"
    "let f vm h = Vmsim.set_fault_handler vm h\n";
  check_rules "no handler, no finding" [] ~path:"lib/core/foo.ml" "let f x = x + 1\n"

(* --- QS006: stringly failure in lib/ --- *)

let test_qs006 () =
  check_rules "failwith in lib" [ "QS006" ] ~path:"lib/core/foo.ml"
    "let f () = failwith \"boom\"\n";
  check_rules "bin exempt" [] ~path:"bin/main.ml" "let f () = failwith \"usage\"\n";
  check_rules "typed raise passes" [] ~path:"lib/core/foo.ml"
    "exception Boom\nlet f () = raise Boom\n"

(* --- QS007: direct disk I/O outside lib/esm --- *)

let test_qs007 () =
  check_rules "Disk.read in lib/core" [ "QS007" ] ~path:"lib/core/foo.ml"
    "let f d b = Esm.Disk.read d 1 b\n";
  check_rules "Disk.write in lib/harness" [ "QS007" ] ~path:"lib/harness/foo.ml"
    "let f d b = Disk.write d 1 b\n";
  check_rules "lib/esm exempt" [] ~path:"lib/esm/server.ml" "let f d b = Disk.read d 1 b\n";
  check_rules "bin tools exempt" [] ~path:"bin/qs_dump.ml" "let f d b = Esm.Disk.read d 1 b\n";
  check_rules "tests exempt" [] ~path:"test/test_foo.ml" "let f d b = Disk.write d 1 b\n";
  check_rules "allow attribute" [] ~path:"lib/core/foo.ml"
    "let f d b = (Esm.Disk.read d 1 b [@qs_lint.allow \"QS007\"])\n";
  check_rules "metadata ops pass" [] ~path:"lib/core/foo.ml"
    "let f d = Esm.Disk.alloc d + Esm.Disk.size_bytes d\n"

(* --- QS008: untraced clock charges outside simclock/obs --- *)

let test_qs008 () =
  check_rules "Clock.charge in lib/core" [ "QS008" ] ~path:"lib/core/foo.ml"
    "let f c = Simclock.Clock.charge c Simclock.Category.Diff 1.0\n";
  check_rules "Clock.charge_n in lib/esm" [ "QS008" ] ~path:"lib/esm/foo.ml"
    "let f c = Clock.charge_n c Category.Min_fault 3 0.5\n";
  check_rules "simclock exempt" [] ~path:"lib/simclock/clock.ml"
    "let f c = Clock.charge c cat 1.0\n";
  check_rules "obs exempt" [] ~path:"lib/obs/qs_trace.ml"
    "let charge = Clock.charge\n";
  check_rules "bin tools exempt" [] ~path:"bin/qs_prof.ml"
    "let f c = Simclock.Clock.charge c cat 1.0\n";
  check_rules "tests exempt" [] ~path:"test/test_foo.ml" "let f c = Clock.charge c cat 1.0\n";
  check_rules "Qs_trace.charge is the fix" [] ~path:"lib/core/foo.ml"
    "let f c = Qs_trace.charge c Simclock.Category.Diff 1.0\n";
  check_rules "allow attribute" [] ~path:"lib/core/foo.ml"
    "let f c = (Simclock.Clock.charge c cat 1.0 [@qs_lint.allow \"QS008\"])\n"

(* --- QS009: unsafe byte access outside the Vmsim fast path --- *)

let test_qs009 () =
  check_rules "unsafe_get in lib/core" [ "QS009" ] ~path:"lib/core/foo.ml"
    "let f b = Bytes.unsafe_get b 0\n";
  check_rules "unsafe_set in lib/esm" [ "QS009" ] ~path:"lib/esm/foo.ml"
    "let f b = Bytes.unsafe_set b 0 'x'\n";
  check_rules "unsafe_blit too" [ "QS009" ] ~path:"lib/core/foo.ml"
    "let f a b = Bytes.unsafe_blit a 0 b 0 8\n";
  check_rules "vmsim exempt" [] ~path:"lib/vmsim/vmsim.ml" "let f b = Bytes.unsafe_get b 0\n";
  check_rules "util exempt" [] ~path:"lib/util/codec.ml" "let f b = Bytes.unsafe_get b 0\n";
  check_rules "allow attribute" [] ~path:"lib/core/foo.ml"
    "let f b = (Bytes.unsafe_get b 0 [@qs_lint.allow \"QS009\"])\n";
  check_rules "safe Bytes ops are QS001's business" [ "QS001" ] ~path:"lib/core/foo.ml"
    "let f b = Bytes.get b 0\n"

(* --- QS010: server page mutation outside lib/esm --- *)

let test_qs010 () =
  check_rules "Server.write_page in lib/core" [ "QS010" ] ~path:"lib/core/foo.ml"
    "let f s b = Esm.Server.write_page s ~txn:1 ~at_commit:true 3 b\n";
  check_rules "Server.apply_regions in lib/harness" [ "QS010" ] ~path:"lib/harness/foo.ml"
    "let f s r = Server.apply_regions s ~txn:1 ~seq:0 3 r\n";
  check_rules "lib/esm exempt" [] ~path:"lib/esm/client.ml"
    "let f s b = Server.write_page s ~txn:1 ~at_commit:true 3 b\n";
  check_rules "bin tools exempt" [] ~path:"bin/qs_dump.ml"
    "let f s b = Esm.Server.write_page s ~txn:1 ~at_commit:false 3 b\n";
  check_rules "tests exempt" [] ~path:"test/test_foo.ml"
    "let f s r = Esm.Server.apply_regions s ~txn:1 ~seq:0 3 r\n";
  check_rules "allow attribute" [] ~path:"lib/core/foo.ml"
    "let f s r = (Esm.Server.apply_regions s ~txn:1 ~seq:0 3 r [@qs_lint.allow \"QS010\"])\n";
  check_rules "read path passes" [] ~path:"lib/core/foo.ml"
    "let f s b = Esm.Server.read_page s ~kind:Esm.Server.Data 3 b\n";
  check_rules "Client ships are the fix" [] ~path:"lib/core/foo.ml"
    "let f c r = Esm.Client.ship_regions c ~page_id:3 r\n"

(* --- QS000: parse errors --- *)

let test_qs000 () =
  check_rules "unclosed paren" [ "QS000" ] ~path:"lib/core/foo.ml" "let f = (\n";
  (* The finding carries the parser's actual diagnostic, not a bare
     "parse error" stub. *)
  match Lint.lint_source ~path:"lib/core/foo.ml" ~contents:"let f = (\n" with
  | [ f ] ->
    let prefix = "parse error: " in
    Alcotest.(check bool) "message has parse-error prefix" true
      (String.length f.Lint.msg > String.length prefix
      && String.sub f.Lint.msg 0 (String.length prefix) = prefix)
  | fs -> Alcotest.fail (Printf.sprintf "expected one finding, got %d" (List.length fs))

(* --- allow-attribute stacking --- *)

let test_allow_dedup () =
  (* Duplicate allows on one node are deduped, and nested duplicates
     unwind correctly: the inner scope's exit must not strip the rule
     while the outer duplicate is still live. *)
  check_rules "duplicate attrs on one node" [ "QS001" ] ~path:"lib/core/foo.ml"
    "let f b = (Bytes.get b 0 [@qs_lint.allow \"QS001\"] [@qs_lint.allow \"QS001\"])\n\
     let g b = Bytes.get b 1\n";
  check_rules "nested duplicate attrs" [ "QS001" ] ~path:"lib/core/foo.ml"
    "let f b = ((Bytes.get b 0 [@qs_lint.allow \"QS001\"]) [@qs_lint.allow \"QS001\"])\n\
     let g b = Bytes.get b 1\n";
  check_rules "one attr, several rules" [] ~path:"lib/core/foo.ml"
    "let f b = (Bytes.unsafe_get (Obj.magic b) 0 [@qs_lint.allow \"QS002\" \"QS009\"])\n"

(* --- plumbing --- *)

let test_path_policy () =
  Alcotest.(check bool) "QS001 off in vmsim" false
    (Lint.rule_applies ~path:"lib/vmsim/vmsim.ml" "QS001");
  Alcotest.(check bool) "QS001 on in core" true
    (Lint.rule_applies ~path:"lib/core/store.ml" "QS001");
  Alcotest.(check bool) "QS004 off in harness" false
    (Lint.rule_applies ~path:"lib/harness/runner.ml" "QS004");
  Alcotest.(check bool) "QS006 only in lib" false (Lint.rule_applies ~path:"bench/main.ml" "QS006");
  Alcotest.(check bool) "QS002 everywhere" true (Lint.rule_applies ~path:"bench/main.ml" "QS002");
  Alcotest.(check bool) "QS007 off in lib/esm" false
    (Lint.rule_applies ~path:"lib/esm/recovery.ml" "QS007");
  Alcotest.(check bool) "QS007 on in lib/core" true
    (Lint.rule_applies ~path:"lib/core/store.ml" "QS007");
  Alcotest.(check bool) "QS007 off in bin" false (Lint.rule_applies ~path:"bin/qs_dump.ml" "QS007");
  Alcotest.(check bool) "QS008 on in core" true
    (Lint.rule_applies ~path:"lib/core/store.ml" "QS008");
  Alcotest.(check bool) "QS008 off in simclock" false
    (Lint.rule_applies ~path:"lib/simclock/clock.ml" "QS008");
  Alcotest.(check bool) "QS008 off in obs" false
    (Lint.rule_applies ~path:"lib/obs/qs_trace.ml" "QS008");
  Alcotest.(check bool) "QS008 off in bin" false (Lint.rule_applies ~path:"bin/qs_prof.ml" "QS008");
  Alcotest.(check bool) "QS009 off in vmsim" false
    (Lint.rule_applies ~path:"lib/vmsim/vmsim.ml" "QS009");
  Alcotest.(check bool) "QS009 off in util" false
    (Lint.rule_applies ~path:"lib/util/codec.ml" "QS009");
  Alcotest.(check bool) "QS009 on in core" true
    (Lint.rule_applies ~path:"lib/core/store.ml" "QS009");
  Alcotest.(check bool) "QS009 on in bench" true (Lint.rule_applies ~path:"bench/main.ml" "QS009");
  Alcotest.(check bool) "QS010 off in lib/esm" false
    (Lint.rule_applies ~path:"lib/esm/client.ml" "QS010");
  Alcotest.(check bool) "QS010 on in lib/core" true
    (Lint.rule_applies ~path:"lib/core/store.ml" "QS010");
  Alcotest.(check bool) "QS010 on in lib/harness" true
    (Lint.rule_applies ~path:"lib/harness/torture.ml" "QS010");
  Alcotest.(check bool) "QS010 off in bin" false
    (Lint.rule_applies ~path:"bin/qs_prof.ml" "QS010");
  Alcotest.(check bool) "QS011 on in lib/esm" true
    (Lint.rule_applies ~path:"lib/esm/client.ml" "QS011");
  Alcotest.(check bool) "QS011 off in lib/analysis" false
    (Lint.rule_applies ~path:"lib/analysis/lint.ml" "QS011");
  Alcotest.(check bool) "QS011 off in bin" false
    (Lint.rule_applies ~path:"bin/qs_dump.ml" "QS011");
  Alcotest.(check bool) "QS012 on in lib/core" true
    (Lint.rule_applies ~path:"lib/core/store.ml" "QS012");
  Alcotest.(check bool) "QS012 off in lib/harness" false
    (Lint.rule_applies ~path:"lib/harness/torture.ml" "QS012");
  Alcotest.(check bool) "QS013 on in lib/esm server" true
    (Lint.rule_applies ~path:"lib/esm/server.ml" "QS013");
  Alcotest.(check bool) "QS013 off in the wal primitive" false
    (Lint.rule_applies ~path:"lib/esm/wal.ml" "QS013");
  Alcotest.(check bool) "QS013 off in the disk primitive" false
    (Lint.rule_applies ~path:"lib/esm/disk.ml" "QS013");
  Alcotest.(check bool) "QS014 on in lib/core" true
    (Lint.rule_applies ~path:"lib/core/store.ml" "QS014");
  Alcotest.(check bool) "QS014 off in test" false
    (Lint.rule_applies ~path:"test/test_foo.ml" "QS014");
  Alcotest.(check bool) "QS016 on in lib/esm" true
    (Lint.rule_applies ~path:"lib/esm/client.ml" "QS016");
  Alcotest.(check bool) "QS016 off in the analyzer" false
    (Lint.rule_applies ~path:"lib/analysis/snapshot_path.ml" "QS016");
  Alcotest.(check bool) "QS016 off in bin" false
    (Lint.rule_applies ~path:"bin/qs_prof.ml" "QS016");
  Alcotest.(check bool) "QS017 on in lib/esm" true
    (Lint.rule_applies ~path:"lib/esm/log_index.ml" "QS017");
  Alcotest.(check bool) "QS017 off in the analyzer" false
    (Lint.rule_applies ~path:"lib/analysis/merge_path.ml" "QS017");
  Alcotest.(check bool) "QS017 off in test" false
    (Lint.rule_applies ~path:"test/test_log_index.ml" "QS017")

let test_report_format () =
  match Lint.lint_source ~path:"lib/core/foo.ml" ~contents:"let f b =\n  Bytes.get b 0\n" with
  | [ f ] ->
    Alcotest.(check int) "line" 2 f.Lint.line;
    let s = Lint.to_string f in
    Alcotest.(check bool) "grep-able report line" true
      (String.length s > 0
      && String.sub s 0 (String.length "lib/core/foo.ml:2: QS001") = "lib/core/foo.ml:2: QS001")
  | fs -> Alcotest.fail (Printf.sprintf "expected one finding, got %d" (List.length fs))

let test_all_rules_listed () =
  List.iter
    (fun r ->
      Alcotest.(check bool) (r ^ " well-formed") true
        (String.length r = 5 && String.sub r 0 2 = "QS"))
    Lint.all_rules;
  (* QS000 (parse error) is a pseudo-rule, not an enforceable one. *)
  Alcotest.(check int) "sixteen enforceable rules" 16 (List.length Lint.all_rules);
  Alcotest.(check bool) "QS000 not listed" false (List.mem "QS000" Lint.all_rules)

(* ================================================================== *)
(* Whole-program analyzer (qs_deps): QS011–QS014 on synthetic trees.   *)

module Deps = Qs_analysis.Qs_deps
module Effects = Qs_analysis.Effects
module Lockorder = Qs_analysis.Lockorder

let deps_rules files =
  List.map (fun f -> f.Lint.rule) (Deps.analyze files).Deps.findings

let check_deps name expected files =
  Alcotest.(check (list string)) name expected (deps_rules files)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- QS011: lock-order cycle --- *)

let ab_src =
  "let f t p q =\n\
  \  lock_page t p Lock_mgr.Exclusive;\n\
  \  lock_file t q Lock_mgr.Shared\n"

let ba_src =
  "let g t p q =\n\
  \  lock_file t q Lock_mgr.Shared;\n\
  \  lock_page t p Lock_mgr.Exclusive\n"

let test_qs011_cycle () =
  (* Opposite acquisition orders in two modules: Page -> File and
     File -> Page close a cycle; each asserting site is flagged. *)
  check_deps "cycle flagged at both sites" [ "QS011"; "QS011" ]
    [ ("lib/esm/fake_ab.ml", ab_src); ("lib/esm/fake_ba.ml", ba_src) ];
  (* A consistent global order is acyclic: edges exist, no findings. *)
  let r = Deps.analyze [ ("lib/esm/fake_ab.ml", ab_src) ] in
  Alcotest.(check int) "one order edge" 1 (List.length r.Deps.edges);
  Alcotest.(check (list string)) "consistent order is clean" [] (Lockorder.cycles r.Deps.edges);
  (* File-level allows on both sides silence the cycle. *)
  check_deps "allowlisted cycle is silent" []
    [ ("lib/esm/fake_ab.ml", "[@@@qs_lint.allow \"QS011\"]\n" ^ ab_src)
    ; ("lib/esm/fake_ba.ml", "[@@@qs_lint.allow \"QS011\"]\n" ^ ba_src) ]

(* --- QS012: lock held across a charge boundary --- *)

let help_src = "let bill c = Qs_trace.charge c Simclock.Category.Diff 1.0\n"

let test_qs012_window () =
  (* The charge is reached transitively through a cross-module helper:
     only interprocedural propagation can see it. *)
  check_deps "transitive charge under lock" [ "QS012" ]
    [ ("lib/esm/fake_help.ml", help_src)
    ; ( "lib/esm/fake_use.ml"
      , "let f t c p =\n  lock_page t p Lock_mgr.Exclusive;\n  Fake_help.bill c\n" ) ];
  check_deps "allowlisted window is silent" []
    [ ("lib/esm/fake_help.ml", help_src)
    ; ( "lib/esm/fake_use.ml"
      , "let f t c p =\n\
        \  (lock_page t p Lock_mgr.Exclusive [@qs_lint.allow \"QS012\"]);\n\
        \  Fake_help.bill c\n" ) ];
  check_deps "charge before the acquisition is clean" []
    [ ("lib/esm/fake_help.ml", help_src)
    ; ("lib/esm/fake_use.ml", "let g t c p =\n  Fake_help.bill c;\n  lock_page t p Lock_mgr.Exclusive\n")
    ];
  check_deps "release closes the window" []
    [ ("lib/esm/fake_help.ml", help_src)
    ; ( "lib/esm/fake_use.ml"
      , "let h t c p =\n\
        \  lock_page t p Lock_mgr.Exclusive;\n\
        \  Lock_mgr.release_all t;\n\
        \  Fake_help.bill c\n" ) ];
  (* A blocking point also closes the window: once the path parks on
     the scheduler, the lock manager's waits-for graph watches the
     wait dynamically, so the hold is no longer a silent hazard. *)
  check_deps "a block closes the window" []
    [ ("lib/esm/fake_help.ml", help_src)
    ; ( "lib/esm/fake_use.ml"
      , "let b t c p w =\n\
        \  lock_page t p Lock_mgr.Exclusive;\n\
        \  ignore (Sched.block_on ~what:w check);\n\
        \  Fake_help.bill c\n" ) ];
  (* A blocking acquisition never arms at all. *)
  check_deps "blocking acquire is not a window" []
    [ ("lib/esm/fake_help.ml", help_src)
    ; ( "lib/esm/fake_use.ml"
      , "let a t txn c r m w =\n\
        \  Lock_mgr.acquire_blocking t ~txn ~wait:w r m;\n\
        \  Fake_help.bill c\n" ) ]

(* --- QS013: durable write with no crash point before it --- *)

let test_qs013_coverage () =
  check_deps "bare force flagged" [ "QS013" ]
    [ ("lib/esm/fake_flush.ml", "let flush w = ignore (Wal.force w)\n") ];
  check_deps "direct hit covers" []
    [ ( "lib/esm/fake_flush.ml"
      , "let flush t w =\n\
        \  Qs_fault.hit t Qs_fault.Point.commit_pre_flush;\n\
        \  ignore (Wal.force w)\n" ) ];
  (* Coverage through a helper: the hit is inside [guard], and the
     effect summary carries the crash surface to the call site. *)
  check_deps "transitive hit covers" []
    [ ( "lib/esm/fake_flush.ml"
      , "let guard t = Qs_fault.hit t Qs_fault.Point.commit_pre_flush\n\
         let flush t w =\n\
        \  guard t;\n\
        \  ignore (Wal.force w)\n" ) ];
  check_deps "allowlisted force is silent" []
    [ ("lib/esm/fake_flush.ml", "let flush w = ignore (Wal.force w [@qs_lint.allow \"QS013\"])\n") ]

(* --- QS014: resource leak on an exceptional path --- *)

let leak_prelude = "exception Boom\nlet risky () = raise Boom\n"

let test_qs014_leak () =
  check_deps "unprotected pin across a raiser" [ "QS014" ]
    [ ( "lib/esm/fake_leak.ml"
      , leak_prelude
        ^ "let f c p =\n\
          \  let frame = Client.fix_page c ~kind:Server.Data p in\n\
          \  risky ();\n\
          \  Client.unfix_page c ~frame\n" ) ];
  check_deps "Fun.protect finally is safe" []
    [ ( "lib/esm/fake_leak.ml"
      , leak_prelude
        ^ "let g c p =\n\
          \  let frame = Client.fix_page c ~kind:Server.Data p in\n\
          \  Fun.protect ~finally:(fun () -> Client.unfix_page c ~frame) (fun () -> risky ())\n" )
    ];
  check_deps "handler release is safe" []
    [ ( "lib/esm/fake_leak.ml"
      , leak_prelude
        ^ "let h c p =\n\
          \  let frame = Client.fix_page c ~kind:Server.Data p in\n\
          \  (try risky () with Boom -> Client.unfix_page c ~frame; raise Boom);\n\
          \  Client.unfix_page c ~frame\n" ) ];
  (* Acquire and release in sibling match arms are different execution
     paths: no pair, hence an escaping pin, hence clean. *)
  check_deps "sibling-arm release does not pair" []
    [ ( "lib/esm/fake_leak.ml"
      , leak_prelude
        ^ "let k c p frames =\n\
          \  match frames with\n\
          \  | [] -> Client.fix_page c ~kind:Server.Data p\n\
          \  | fr :: _ ->\n\
          \    risky ();\n\
          \    Client.unfix_page c ~frame:fr;\n\
          \    fr\n" ) ];
  check_deps "allowlisted pin is silent" []
    [ ( "lib/esm/fake_leak.ml"
      , leak_prelude
        ^ "let f c p =\n\
          \  let frame = (Client.fix_page c ~kind:Server.Data p [@qs_lint.allow \"QS014\"]) in\n\
          \  risky ();\n\
          \  Client.unfix_page c ~frame\n" ) ]

(* --- QS016: lock acquisition reachable from the snapshot-read path --- *)

let test_qs016_snapshot () =
  (* A function named like a snapshot-path entry point that takes a
     page lock directly is flagged at the acquisition site. *)
  check_deps "direct lock on the snapshot path" [ "QS016" ]
    [ ( "lib/esm/fake_snap.ml"
      , "let snapshot_fix_page t p =\n  lock_page t p Lock_mgr.Shared\n" ) ];
  (* Reachability is transitive and crosses modules: the root calls a
     clean-looking helper whose helper locks. Both non-root functions
     are only flagged because the root reaches them. *)
  check_deps "transitive lock through a helper" [ "QS016" ]
    [ ("lib/esm/fake_snap_help.ml", "let deep t p = lock_page t p Lock_mgr.Shared\nlet step t p = deep t p\n")
    ; ("lib/esm/fake_snap.ml", "let with_snapshot_txn t p = Fake_snap_help.step t p\n") ];
  (* The same helper with no snapshot root anywhere is not QS016's
     business (QS011 needs two orders for a cycle, so it stays quiet). *)
  check_deps "lock off the snapshot path is clean" []
    [ ("lib/esm/fake_snap_help.ml", "let step t p = lock_page t p Lock_mgr.Shared\n") ];
  (* A realistic lock-free snapshot read: materialize + charge, no
     acquisition anywhere. *)
  check_deps "lock-free snapshot path is clean" []
    [ ( "lib/esm/fake_snap.ml"
      , "let read_page_at t ~snap page dst =\n\
        \  Version_store.materialize t ~lsn:snap page dst;\n\
        \  Qs_trace.charge t Simclock.Category.Snapshot_read 1.0\n" ) ];
  (* An expression-level allow (with its rationale in real code)
     silences the finding at that site only. *)
  check_deps "allowlisted acquisition is silent" []
    [ ( "lib/esm/fake_snap.ml"
      , "let snapshot_fix_page t p =\n\
        \  (lock_page t p Lock_mgr.Shared [@qs_lint.allow \"QS016\"])\n" ) ];
  (* Path policy: the same source under lib/analysis is exempt. *)
  check_deps "analyzer sources are exempt" []
    [ ( "lib/analysis/fake_snap.ml"
      , "let snapshot_fix_page t p =\n  lock_page t p Lock_mgr.Shared\n" ) ]

(* --- QS017: page lock held across a charge on the merge path --- *)

let mg_help_src = "let grab t p = lock_page t p Lock_mgr.Shared\n"

let test_qs017_merge () =
  (* A transitive acquisition (through a helper, so QS012's
     direct-only scan stays quiet) held across a charge inside a
     merge-named root: flagged at the arming call site. *)
  check_deps "transitive lock across a charge in a merge" [ "QS017" ]
    [ ("lib/esm/fake_mg_help.ml", mg_help_src)
    ; ( "lib/esm/fake_mg.ml"
      , "let do_merge t c p =\n\
        \  Fake_mg_help.grab t p;\n\
        \  Qs_trace.charge c Simclock.Category.Diff 1.0\n" ) ];
  (* A direct acquisition in the merge root trips both the general
     window rule and the merge-path rule, at the same site. *)
  check_deps "direct lock is both QS012 and QS017" [ "QS012"; "QS017" ]
    [ ( "lib/esm/fake_mg.ml"
      , "let merge t c p =\n\
        \  lock_page t p Lock_mgr.Shared;\n\
        \  Qs_trace.charge c Simclock.Category.Diff 1.0\n" ) ];
  (* The identical shape under a non-merge name is not QS017's
     business. *)
  check_deps "lock off the merge path is clean" []
    [ ("lib/esm/fake_mg_help.ml", mg_help_src)
    ; ( "lib/esm/fake_mg.ml"
      , "let rebuild t c p =\n\
        \  Fake_mg_help.grab t p;\n\
        \  Qs_trace.charge c Simclock.Category.Diff 1.0\n" ) ];
  (* The real merge's discipline — fix, charge, unfix, no lock
     manager anywhere — is clean. *)
  check_deps "lock-free merge is clean" []
    [ ( "lib/esm/fake_mg.ml"
      , "let do_merge t c p =\n\
        \  let frame = Client.fix_page c ~kind:Server.Index p in\n\
        \  Qs_trace.charge c Simclock.Category.Diff 1.0;\n\
        \  Client.unfix_page c ~frame\n" ) ];
  (* An expression-level allow (with its rationale in real code)
     silences the finding at that site only. *)
  check_deps "allowlisted merge window is silent" []
    [ ("lib/esm/fake_mg_help.ml", mg_help_src)
    ; ( "lib/esm/fake_mg.ml"
      , "let do_merge t c p =\n\
        \  (Fake_mg_help.grab t p [@qs_lint.allow \"QS017\"]);\n\
        \  Qs_trace.charge c Simclock.Category.Diff 1.0\n" ) ];
  (* A release between the acquisition and the charge closes the
     window, exactly as in QS012. *)
  check_deps "release closes the merge window" []
    [ ("lib/esm/fake_mg_help.ml", mg_help_src)
    ; ( "lib/esm/fake_mg.ml"
      , "let do_merge t c p =\n\
        \  Fake_mg_help.grab t p;\n\
        \  Lock_mgr.release_all t;\n\
        \  Qs_trace.charge c Simclock.Category.Diff 1.0\n" ) ]

(* --- fixpoint termination and effect propagation --- *)

let mutual_src =
  "let rec even n c = if n = 0 then Qs_trace.charge c Simclock.Category.Diff 1.0 else odd (n - 1) c\n\
   and odd n c = if n = 0 then () else even (n - 1) c\n"

let test_fixpoint_mutual () =
  (* Mutually recursive functions: the fixpoint must terminate, and the
     charge effect must propagate around the even/odd loop. *)
  let r = Deps.analyze [ ("lib/esm/fake_mutual.ml", mutual_src) ] in
  Alcotest.(check bool) "even charges" true
    (Effects.get r.Deps.summaries "lib/esm/fake_mutual.ml:Fake_mutual.even").Effects.charges;
  Alcotest.(check bool) "odd charges transitively" true
    (Effects.get r.Deps.summaries "lib/esm/fake_mutual.ml:Fake_mutual.odd").Effects.charges;
  Alcotest.(check (list string)) "no findings" [] (deps_rules [ ("lib/esm/fake_mutual.ml", mutual_src) ])

let test_effects_json () =
  let files = [ ("lib/esm/fake_help.ml", help_src); ("lib/esm/fake_mutual.ml", mutual_src) ] in
  let j1 = Deps.effects_json (Deps.analyze files) in
  let j2 = Deps.effects_json (Deps.analyze files) in
  Alcotest.(check string) "two runs are byte-identical" j1 j2;
  Alcotest.(check bool) "helper row present" true (contains j1 "\"function\":\"Fake_help.bill\"");
  Alcotest.(check bool) "charge flag serialized" true (contains j1 "\"charges\":true")

let () =
  Alcotest.run "analysis"
    [ ( "rules"
      , [ Alcotest.test_case "QS001 raw page bytes" `Quick test_qs001
        ; Alcotest.test_case "QS002 obj magic" `Quick test_qs002
        ; Alcotest.test_case "QS003 poly compare" `Quick test_qs003
        ; Alcotest.test_case "QS004 gated calls" `Quick test_qs004
        ; Alcotest.test_case "QS005 handler without charge" `Quick test_qs005
        ; Alcotest.test_case "QS006 stringly failure" `Quick test_qs006
        ; Alcotest.test_case "QS007 direct disk io" `Quick test_qs007
        ; Alcotest.test_case "QS008 untraced charge" `Quick test_qs008
        ; Alcotest.test_case "QS009 unsafe bytes" `Quick test_qs009
        ; Alcotest.test_case "QS010 server page mutation" `Quick test_qs010
        ; Alcotest.test_case "QS000 parse error" `Quick test_qs000
        ; Alcotest.test_case "allow dedup" `Quick test_allow_dedup ] )
    ; ( "qs_deps"
      , [ Alcotest.test_case "QS011 lock-order cycle" `Quick test_qs011_cycle
        ; Alcotest.test_case "QS012 lock across charge" `Quick test_qs012_window
        ; Alcotest.test_case "QS013 crash-point coverage" `Quick test_qs013_coverage
        ; Alcotest.test_case "QS014 exception-path leak" `Quick test_qs014_leak
        ; Alcotest.test_case "QS016 snapshot-path lock freedom" `Quick test_qs016_snapshot
        ; Alcotest.test_case "QS017 merge-path lock discipline" `Quick test_qs017_merge
        ; Alcotest.test_case "fixpoint on mutual recursion" `Quick test_fixpoint_mutual
        ; Alcotest.test_case "effects json determinism" `Quick test_effects_json ] )
    ; ( "plumbing"
      , [ Alcotest.test_case "path policy" `Quick test_path_policy
        ; Alcotest.test_case "report format" `Quick test_report_format
        ; Alcotest.test_case "rule list" `Quick test_all_rules_listed ] ) ]
