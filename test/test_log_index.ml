(* Log-structured index unit tests: append/lookup/range semantics
   (pinned to the B-tree oracle's), forced and automatic merges with a
   tiny log area, persistence, abort rollback via mirror revalidation,
   crash recovery, the Root_dir.Directory_full typed error, and Store
   routing under the [log_index] knob. *)

module Log_index = Esm.Log_index
module Btree = Esm.Btree
module Client = Esm.Client
module Server = Esm.Server
module Recovery = Esm.Recovery
module Root_dir = Esm.Root_dir
module Oid = Esm.Oid
module Clock = Simclock.Clock
module Store = Quickstore.Store
module Qs_config = Quickstore.Qs_config

let mk () =
  let s = Server.create ~frames:256 ~clock:(Clock.create ()) ~cm:Simclock.Cost_model.default () in
  (s, Client.create ~frames:64 s)

let mk_client () = snd (mk ())
let reconnect s = Client.create ~frames:64 s
let oid_of_int i = Oid.make ~page:i ~slot:(i mod 100) ~unique:i ()
let ikey = Btree.key_of_int ~klen:8
let int_of_key k = Int64.to_int (Bytes.get_int64_be k 0)

let test_empty () =
  let c = mk_client () in
  Client.begin_txn c;
  let t = Log_index.create c ~klen:8 in
  Alcotest.(check bool) "empty lookup" true (Log_index.lookup t ~key:(ikey 5) = None);
  Alcotest.(check int) "cardinal" 0 (Log_index.cardinal t);
  let st = Log_index.stats t in
  Alcotest.(check int) "generation 0" 0 st.Log_index.generation;
  Alcotest.(check int) "log empty" 0 st.Log_index.log_len;
  Client.commit c

let test_insert_lookup () =
  let c = mk_client () in
  Client.begin_txn c;
  let t = Log_index.create c ~klen:8 in
  List.iter (fun i -> Log_index.insert t ~key:(ikey i) ~oid:(oid_of_int i)) [ 5; 3; 8; 1; 9 ];
  List.iter
    (fun i ->
      match Log_index.lookup t ~key:(ikey i) with
      | Some o ->
        Alcotest.(check bool) (Printf.sprintf "found %d" i) true (Oid.equal o (oid_of_int i))
      | None -> Alcotest.fail (Printf.sprintf "missing %d" i))
    [ 1; 3; 5; 8; 9 ];
  Alcotest.(check bool) "absent" true (Log_index.lookup t ~key:(ikey 4) = None);
  Client.commit c

let test_duplicates () =
  let c = mk_client () in
  Client.begin_txn c;
  let t = Log_index.create c ~klen:8 in
  for i = 1 to 20 do
    Log_index.insert t ~key:(ikey 7) ~oid:(oid_of_int i)
  done;
  (* exact-pair re-insert is idempotent, also across a merge *)
  Log_index.insert t ~key:(ikey 7) ~oid:(oid_of_int 5);
  Alcotest.(check int) "20 distinct pairs" 20 (List.length (Log_index.lookup_all t ~key:(ikey 7)));
  Log_index.merge t;
  Log_index.insert t ~key:(ikey 7) ~oid:(oid_of_int 5);
  Alcotest.(check int) "still 20 after merge" 20
    (List.length (Log_index.lookup_all t ~key:(ikey 7)));
  (* insertion order preserved, like the B-tree *)
  let first = Option.get (Log_index.lookup t ~key:(ikey 7)) in
  Alcotest.(check bool) "first pair wins" true (Oid.equal first (oid_of_int 1));
  Client.commit c

let test_delete () =
  let c = mk_client () in
  Client.begin_txn c;
  let t = Log_index.create c ~klen:8 in
  for i = 1 to 50 do
    Log_index.insert t ~key:(ikey i) ~oid:(oid_of_int i)
  done;
  (* delete an entry that lives in the sorted run (tombstone overlay) *)
  Log_index.merge t;
  Alcotest.(check bool) "delete present" true
    (Log_index.delete t ~key:(ikey 25) ~oid:(oid_of_int 25));
  Alcotest.(check bool) "delete absent" false
    (Log_index.delete t ~key:(ikey 25) ~oid:(oid_of_int 25));
  Alcotest.(check bool) "gone" true (Log_index.lookup t ~key:(ikey 25) = None);
  Alcotest.(check int) "cardinal" 49 (Log_index.cardinal t);
  (* the tombstone survives the next merge *)
  Log_index.merge t;
  Alcotest.(check bool) "gone after merge" true (Log_index.lookup t ~key:(ikey 25) = None);
  Alcotest.(check int) "cardinal after merge" 49 (Log_index.cardinal t);
  Client.commit c

let test_update_indexed_field_pattern () =
  (* T3's pattern: delete old key, insert new key for the same OID. *)
  let c = mk_client () in
  Client.begin_txn c;
  let t = Log_index.create c ~klen:8 in
  let o = oid_of_int 1 in
  Log_index.insert t ~key:(ikey 1000) ~oid:o;
  ignore (Log_index.delete t ~key:(ikey 1000) ~oid:o);
  Log_index.insert t ~key:(ikey 1001) ~oid:o;
  Alcotest.(check bool) "old gone" true (Log_index.lookup t ~key:(ikey 1000) = None);
  Alcotest.(check bool) "new present" true (Log_index.lookup t ~key:(ikey 1001) <> None);
  Client.commit c

let test_range_scan () =
  let c = mk_client () in
  Client.begin_txn c;
  let t = Log_index.create c ~klen:8 in
  (* evens land in the sorted run, odds stay in the log: the scan must
     merge-join both sides in key order *)
  for i = 0 to 99 do
    Log_index.insert t ~key:(ikey (i * 2)) ~oid:(oid_of_int i)
  done;
  Log_index.merge t;
  for i = 0 to 99 do
    Log_index.insert t ~key:(ikey ((i * 2) + 1)) ~oid:(oid_of_int (1000 + i))
  done;
  let seen = ref [] in
  Log_index.range t ~lo:(ikey 10) ~hi:(ikey 21) (fun k _ -> seen := int_of_key k :: !seen);
  Alcotest.(check (list int)) "inclusive range" [ 10; 11; 12; 13; 14; 15; 16; 17; 18; 19; 20; 21 ]
    (List.rev !seen);
  Client.commit c

let test_auto_merge () =
  let c = mk_client () in
  Client.begin_txn c;
  (* one log page holds (8192-32)/25 = 326 bindings: 1000 inserts force
     several automatic merges *)
  let t = Log_index.create ~log_pages:1 c ~klen:8 in
  Alcotest.(check int) "tiny log cap" 326 (Log_index.stats t).Log_index.log_cap;
  for i = 1 to 1000 do
    Log_index.insert t ~key:(ikey i) ~oid:(oid_of_int i)
  done;
  let st = Log_index.stats t in
  Alcotest.(check bool) "merged at least twice" true (st.Log_index.generation >= 2);
  Alcotest.(check int) "nothing lost" 1000 (st.Log_index.data_entries + st.Log_index.log_len);
  Alcotest.(check int) "cardinal" 1000 (Log_index.cardinal t);
  for i = 1 to 1000 do
    if Log_index.lookup t ~key:(ikey i) = None then
      Alcotest.fail (Printf.sprintf "missing %d after auto-merges" i)
  done;
  (* run order: the full scan comes back sorted *)
  let prev = ref (-1) in
  Log_index.range t ~lo:(ikey 0) ~hi:(ikey 2000) (fun k _ ->
      let i = int_of_key k in
      if i <= !prev then Alcotest.fail "range out of order";
      prev := i);
  (* fan-out bookkeeping agrees with itself *)
  let st = Log_index.stats t in
  Alcotest.(check int) "fanout sums to run" st.Log_index.data_entries
    (Array.fold_left ( + ) 0 st.Log_index.fanout);
  Client.commit c

let test_force_merge_empty_log () =
  let c = mk_client () in
  Client.begin_txn c;
  let t = Log_index.create c ~klen:8 in
  for i = 1 to 10 do
    Log_index.insert t ~key:(ikey i) ~oid:(oid_of_int i)
  done;
  Log_index.merge t;
  let g = (Log_index.stats t).Log_index.generation in
  Log_index.merge t;
  Alcotest.(check int) "no-op on empty log" g (Log_index.stats t).Log_index.generation;
  Log_index.merge ~force:true t;
  let st = Log_index.stats t in
  Alcotest.(check int) "forced swing" (g + 1) st.Log_index.generation;
  Alcotest.(check int) "run intact" 10 st.Log_index.data_entries;
  Client.commit c

let test_string_keys () =
  let c = mk_client () in
  Client.begin_txn c;
  let t = Log_index.create c ~klen:20 in
  let key = Btree.key_of_string ~klen:20 in
  List.iteri
    (fun i s -> Log_index.insert t ~key:(key s) ~oid:(oid_of_int i))
    [ "delta"; "alpha"; "charlie"; "bravo" ];
  Log_index.merge t;
  let seen = ref [] in
  Log_index.range t ~lo:(key "") ~hi:(key "zzzz") (fun k _ ->
      seen := Qs_util.Codec.get_cstring k 0 20 :: !seen);
  Alcotest.(check (list string)) "sorted" [ "alpha"; "bravo"; "charlie"; "delta" ] (List.rev !seen);
  Client.commit c

let test_persistence_across_cache_reset () =
  let c = mk_client () in
  Client.begin_txn c;
  let t = Log_index.create ~log_pages:1 c ~klen:8 in
  for i = 1 to 500 do
    Log_index.insert t ~key:(ikey i) ~oid:(oid_of_int i)
  done;
  let root = Log_index.root t in
  Client.commit c;
  Client.reset_cache c;
  Server.reset_cache (Client.server c);
  Client.begin_txn c;
  Alcotest.(check bool) "magic recognized" true (Log_index.is_log_index_root c ~root);
  let t' = Log_index.open_index c ~root ~klen:8 in
  Alcotest.(check int) "all found from disk" 500 (Log_index.cardinal t');
  Alcotest.(check bool) "not a btree root" false
    (let s2 = mk_client () in
     Client.begin_txn s2;
     let bt = Btree.create s2 ~klen:8 in
     let r = Log_index.is_log_index_root s2 ~root:(Btree.root bt) in
     Client.commit s2;
     r);
  Client.commit c

let test_abort_rolls_back () =
  let c = mk_client () in
  Client.begin_txn c;
  let t = Log_index.create ~log_pages:1 c ~klen:8 in
  for i = 1 to 10 do
    Log_index.insert t ~key:(ikey i) ~oid:(oid_of_int i)
  done;
  let root = Log_index.root t in
  Client.commit c;
  (* abort a transaction that appended AND merged: physical undo must
     restore the old generation, and the surviving handle must heal
     itself through mirror revalidation *)
  Client.begin_txn c;
  Log_index.insert t ~key:(ikey 11) ~oid:(oid_of_int 11);
  ignore (Log_index.delete t ~key:(ikey 1) ~oid:(oid_of_int 1));
  Log_index.merge t;
  Alcotest.(check int) "merged state visible pre-abort" 10 (Log_index.cardinal t);
  Client.abort c;
  Client.begin_txn c;
  Alcotest.(check bool) "aborted insert gone (same handle)" true
    (Log_index.lookup t ~key:(ikey 11) = None);
  Alcotest.(check bool) "aborted delete restored" true (Log_index.lookup t ~key:(ikey 1) <> None);
  Alcotest.(check int) "cardinal back" 10 (Log_index.cardinal t);
  let t' = Log_index.open_index c ~root ~klen:8 in
  Alcotest.(check int) "fresh handle agrees" 10 (Log_index.cardinal t');
  Client.commit c

let test_crash_recovery () =
  let s, c = mk () in
  Client.begin_txn c;
  let t = Log_index.create ~log_pages:1 c ~klen:8 in
  for i = 1 to 400 do
    Log_index.insert t ~key:(ikey i) ~oid:(oid_of_int i)
  done;
  let root = Log_index.root t in
  Client.commit c;
  (* a loser transaction appends and merges, then the server dies *)
  Client.begin_txn c;
  for i = 401 to 450 do
    Log_index.insert t ~key:(ikey i) ~oid:(oid_of_int i)
  done;
  Log_index.merge t;
  Client.crash c;
  Server.crash s;
  ignore (Recovery.restart s);
  let c = reconnect s in
  Client.begin_txn c;
  let t' = Log_index.open_index c ~root ~klen:8 in
  Alcotest.(check int) "committed bindings survive" 400 (Log_index.cardinal t');
  Alcotest.(check bool) "loser's append undone" true (Log_index.lookup t' ~key:(ikey 425) = None);
  Alcotest.(check bool) "committed key present" true (Log_index.lookup t' ~key:(ikey 17) <> None);
  Client.commit c

let test_root_dir_full () =
  let c = mk_client () in
  Client.begin_txn c;
  let meta_page = Root_dir.format_db c in
  let big = Bytes.make 900 'x' in
  Alcotest.check_raises "typed overflow" Root_dir.Directory_full (fun () ->
      for i = 0 to 20 do
        Root_dir.set c ~meta_page (Printf.sprintf "entry_%02d" i) big
      done);
  (* the page is still a consistent directory: earlier entries intact *)
  Alcotest.(check bool) "prior entries readable" true
    (Root_dir.get c ~meta_page "entry_00" = Some big);
  Client.commit c

(* Store routing: the same workload through Store.index_* under both
   knob settings must agree, and the chosen structure must be the one
   the knob asked for. *)
let node_def = Schema.class_def "Node" [ ("id", Schema.F_int) ]

let store_workload config =
  let server =
    Server.create ~frames:512 ~clock:(Clock.create ()) ~cm:Simclock.Cost_model.default ()
  in
  let st = Store.create_db ~config server in
  Store.register_class st node_def;
  Store.begin_txn st;
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  let cluster = Store.new_cluster st in
  Store.index_create st "by_id" ~klen:8;
  for i = 0 to 99 do
    let p = Store.create st ~cls:"Node" ~cluster in
    Store.set_int st p f_id i;
    Store.index_insert st "by_id" ~key:(ikey ((i * 7) mod 101)) p
  done;
  let lookups =
    List.map
      (fun k ->
        match Store.index_lookup st "by_id" ~key:(ikey k) with
        | Some p -> Some (Store.get_int st p f_id)
        | None -> None)
      [ 0; 7; 14; 50; 100; 33 ]
  in
  let scanned = ref [] in
  Store.index_range st "by_id" ~lo:(ikey 10) ~hi:(ikey 40) (fun p ->
      scanned := Store.get_int st p f_id :: !scanned);
  Store.commit st;
  (lookups, List.rev !scanned)

let test_store_routing () =
  let base = { Qs_config.default with Qs_config.sanitize = true } in
  let r_bt = store_workload base in
  let r_li = store_workload { base with Qs_config.log_index = true } in
  Alcotest.(check bool) "btree and log-index stores agree" true (r_bt = r_li)

(* Model-based property, shared shape with the B-tree's: random
   inserts/deletes with interleaved merges against a hashtable model. *)
let prop_log_index_model =
  QCheck.Test.make ~name:"log index agrees with model (with merges)" ~count:40
    QCheck.(list (pair (int_bound 100) bool))
    (fun ops ->
      let c = mk_client () in
      Client.begin_txn c;
      let t = Log_index.create ~log_pages:1 c ~klen:8 in
      let model = Hashtbl.create 16 in
      List.iteri
        (fun n (k, add) ->
          let key = ikey k and oid = oid_of_int k in
          if add then begin
            Log_index.insert t ~key ~oid;
            Hashtbl.replace model k ()
          end
          else begin
            ignore (Log_index.delete t ~key ~oid);
            Hashtbl.remove model k
          end;
          if n mod 17 = 0 then Log_index.merge t)
        ops;
      let ok =
        Log_index.cardinal t = Hashtbl.length model
        && Hashtbl.fold (fun k () acc -> acc && Log_index.lookup t ~key:(ikey k) <> None) model true
      in
      Client.commit c;
      ok)

let () =
  Alcotest.run "log_index"
    [ ( "log_index"
      , [ Alcotest.test_case "empty" `Quick test_empty
        ; Alcotest.test_case "insert/lookup" `Quick test_insert_lookup
        ; Alcotest.test_case "duplicates" `Quick test_duplicates
        ; Alcotest.test_case "delete" `Quick test_delete
        ; Alcotest.test_case "indexed-field update" `Quick test_update_indexed_field_pattern
        ; Alcotest.test_case "range scan" `Quick test_range_scan
        ; Alcotest.test_case "automatic merges" `Quick test_auto_merge
        ; Alcotest.test_case "forced/empty merge" `Quick test_force_merge_empty_log
        ; Alcotest.test_case "string keys" `Quick test_string_keys
        ; Alcotest.test_case "persistent across reset" `Quick test_persistence_across_cache_reset
        ; Alcotest.test_case "abort rollback" `Quick test_abort_rolls_back
        ; Alcotest.test_case "crash recovery" `Quick test_crash_recovery
        ; Alcotest.test_case "root dir full" `Quick test_root_dir_full
        ; Alcotest.test_case "store routing" `Quick test_store_routing ] )
    ; ("properties", List.map QCheck_alcotest.to_alcotest [ prop_log_index_model ]) ]
