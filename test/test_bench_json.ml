(* Bench-shape gate: regenerate the committed OO7 small-database
   baselines (per-op times, I/O counts, fault counts and win/loss
   orderings) and fail on any byte of drift. Three baselines:
   BENCH_oo7.json is the stock configuration; BENCH_oo7_prefetch.json
   is QS with fault-time page-run prefetch + group commit against a
   stock E control, pinning both the batched savings and E's
   non-participation; BENCH_oo7_diffship.json is QS with the
   diff-shipping commit (region ships + WAL-force pipelining) against
   the same stock E control, pinning the region-ship byte savings;
   BENCH_oo7_multi.json is the multi-user hot-page-skew workload at 1,
   2 and 4 simulated clients under the deterministic scheduler,
   pinning commit/retry/lock-wait counts and the trace digest (i.e.
   the interleaving itself); BENCH_oo7_callback.json runs the 4-client
   workload under both cache-consistency regimes, pinning the retained
   hits and server reads saved by callback locking next to the reset
   baseline; BENCH_oo7_snapshot.json runs the 4-client workload at 80%
   read-only scans under both read regimes — locking scans vs MVCC
   snapshot bodies — pinning the reader lock-wait collapse and the
   world-digest equality that proves writer effects are byte-identical;
   BENCH_index.json builds the log-structured index and the small-fan-out
   B-tree oracle at growing scales and probes cold lookups, pinning the
   flat per-lookup cost (and the under-2x spread summary) next to the
   B-tree's depth growth.
   The simulation is deterministic, so times are
   compared exactly, not within a tolerance — any change to a committed
   file must be a deliberate, reviewed re-baseline
   (dune exec bench/main.exe -- quick no-bech --json).

   Runs as a plain executable test: exit 0 on match, exit 1 with the
   first differing line otherwise. *)

(* Under [dune runtest] the cwd is [_build/default/test] (the baselines
   are declared deps one level up); under [dune exec] from the repo
   root it is the root itself. *)
let candidates name = [ "../" ^ name; name ]

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: la', y :: lb' -> if x = y then go (i + 1) la' lb' else Some (i, x, y)
    | x :: _, [] -> Some (i, x, "<eof>")
    | [], y :: _ -> Some (i, "<eof>", y)
  in
  go 1 la lb

let check ~name regenerated =
  let baseline =
    match List.find_opt Sys.file_exists (candidates name) with
    | Some path -> read_file path
    | None ->
      Printf.eprintf "test_bench_json: committed baseline %s not found\n" name;
      exit 1
  in
  if String.equal baseline regenerated then
    Printf.printf "test_bench_json: %s matches the regenerated benchmark byte-for-byte\n" name
  else begin
    Printf.eprintf
      "test_bench_json: BENCH SHAPE DRIFT — regenerated OO7 output differs from the\n\
       committed %s. If the change is intentional, re-baseline with:\n\
      \  dune exec bench/main.exe -- quick no-bech --json\n"
      name;
    (match first_diff baseline regenerated with
     | Some (line, was, now) ->
       Printf.eprintf "first difference at line %d:\n  baseline:    %s\n  regenerated: %s\n" line
         was now
     | None ->
       Printf.eprintf "files differ in length only (baseline %d bytes, regenerated %d bytes)\n"
         (String.length baseline) (String.length regenerated));
    exit 1
  end

let () =
  let seed = 1234 in
  let progress m = Printf.printf "%s\n%!" m in
  let suites = Harness.Bench_json.small_suites ~progress ~seed () in
  check ~name:"BENCH_oo7.json" (Harness.Bench_json.render_small ~seed suites);
  let prefetch_suites = Harness.Bench_json.small_prefetch_suites ~progress ~seed () in
  check ~name:"BENCH_oo7_prefetch.json"
    (Harness.Bench_json.render_small_prefetch ~seed prefetch_suites);
  let diffship_suites = Harness.Bench_json.small_diffship_suites ~progress ~seed () in
  check ~name:"BENCH_oo7_diffship.json"
    (Harness.Bench_json.render_small_diffship ~seed diffship_suites);
  let multi_runs = Harness.Bench_json.multi_runs ~progress ~seed () in
  check ~name:"BENCH_oo7_multi.json" (Harness.Bench_json.render_multi ~seed multi_runs);
  let callback_runs = Harness.Bench_json.callback_runs ~progress ~seed () in
  check ~name:"BENCH_oo7_callback.json" (Harness.Bench_json.render_callback ~seed callback_runs);
  let snapshot_runs = Harness.Bench_json.snapshot_runs ~progress ~seed () in
  check ~name:"BENCH_oo7_snapshot.json" (Harness.Bench_json.render_snapshot ~seed snapshot_runs);
  let index_runs = Harness.Bench_json.index_runs ~progress ~seed () in
  check ~name:"BENCH_index.json" (Harness.Bench_json.render_index ~seed index_runs);
  (* The committed baseline must itself carry the tentpole claim: the
     summary field is data, so a re-baseline that loses flatness fails
     here even though the bytes match. *)
  let flat =
    List.exists
      (fun line -> line = "\"log_lookup_flat_2x\":true")
      (String.split_on_char ',' (read_file (List.find Sys.file_exists (candidates "BENCH_index.json"))))
  in
  if not flat then begin
    Printf.eprintf
      "test_bench_json: BENCH_index.json lost the flat-lookup property \
       (log_lookup_flat_2x is not true)\n";
    exit 1
  end;
  Printf.printf "test_bench_json: BENCH_index.json log-index lookup is flat (spread < 2x)\n"
