(* Bench-shape gate: regenerate BENCH_oo7.json (the committed OO7
   small-database baseline: per-op times, I/O counts, fault counts and
   win/loss orderings) and fail on any byte of drift. The simulation is
   deterministic, so times are compared exactly, not within a
   tolerance — any change to the committed file must be a deliberate,
   reviewed re-baseline (dune exec bench/main.exe -- quick no-bech --json).

   Runs as a plain executable test: exit 0 on match, exit 1 with the
   first differing line otherwise. *)

(* Under [dune runtest] the cwd is [_build/default/test] (the baseline
   is a declared dep one level up); under [dune exec] from the repo
   root it is the root itself. *)
let baseline_candidates = [ "../BENCH_oo7.json"; "BENCH_oo7.json" ]

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: la', y :: lb' -> if x = y then go (i + 1) la' lb' else Some (i, x, y)
    | x :: _, [] -> Some (i, x, "<eof>")
    | [], y :: _ -> Some (i, "<eof>", y)
  in
  go 1 la lb

let () =
  let baseline =
    match List.find_opt Sys.file_exists baseline_candidates with
    | Some path -> read_file path
    | None ->
      prerr_endline "test_bench_json: committed baseline BENCH_oo7.json not found";
      exit 1
  in
  let seed = 1234 in
  let suites =
    Harness.Bench_json.small_suites ~progress:(fun m -> Printf.printf "%s\n%!" m) ~seed ()
  in
  let regenerated = Harness.Bench_json.render_small ~seed suites in
  if String.equal baseline regenerated then
    print_endline "test_bench_json: BENCH_oo7.json matches the regenerated benchmark byte-for-byte"
  else begin
    prerr_endline "test_bench_json: BENCH SHAPE DRIFT — regenerated OO7 output differs from the";
    prerr_endline "committed BENCH_oo7.json. If the change is intentional, re-baseline with:";
    prerr_endline "  dune exec bench/main.exe -- quick no-bech --json";
    (match first_diff baseline regenerated with
     | Some (line, was, now) ->
       Printf.eprintf "first difference at line %d:\n  baseline:    %s\n  regenerated: %s\n" line
         was now
     | None ->
       Printf.eprintf "files differ in length only (baseline %d bytes, regenerated %d bytes)\n"
         (String.length baseline) (String.length regenerated));
    exit 1
  end
