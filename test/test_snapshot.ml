(* Snapshot-read (MVCC) tests: long scans holding one snapshot LSN
   against a stream of writer commits, [Snapshot_too_old] retry when
   reclamation outruns a snapshot, crash recovery at the two snapshot
   crash points, the mapped store's read-only mode, and the frozen
   frames that enforce it. *)

module Server = Esm.Server
module Client = Esm.Client
module Recovery = Esm.Recovery
module Version_store = Esm.Version_store
module F = Qs_fault
module Store = Quickstore.Store
module Clock = Simclock.Clock

let obj_len = 64

let value ~idx ~version =
  let tag = Printf.sprintf "snap-o%d-v%d." idx version in
  Bytes.init obj_len (fun i -> tag.[i mod String.length tag])

(* A server plus a writer and a reader client, with [nobj] objects on
   [nobj] distinct pages (one object per page, so every scan touches
   every page). *)
let mk_world ?fault ~nobj () =
  let clock = Clock.create () in
  let server = Server.create ~frames:64 ?fault ~clock ~cm:Simclock.Cost_model.default () in
  let writer = Client.create ~frames:16 server in
  let reader = Client.create ~frames:16 server in
  let oids =
    Array.init nobj (fun idx ->
        Client.with_txn writer (fun () -> Client.create_object_new_page writer (value ~idx ~version:0)))
  in
  Client.reset_cache writer;
  (server, writer, reader, oids)

(* --- a long scan holds its snapshot across 100+ writer commits --- *)

let test_long_scan_stability () =
  let nobj = 8 in
  let server, writer, reader, oids = mk_world ~nobj () in
  Server.set_versioning ~max_deltas:1024 server true;
  Client.with_snapshot_txn reader ~frames:16 ~sanitize:true (fun () ->
      (* Touch one page before the writer runs, so the scan mixes
         already-materialized frames with pages whose version chains
         grow underneath it. *)
      Alcotest.(check bytes) "pre-commit read" (value ~idx:0 ~version:0)
        (Client.snapshot_read_object reader oids.(0));
      (* 120 committed writer transactions, round-robin over every
         object: by the time the scan resumes, each page's chain holds
         many deltas the materialization must peel back through. *)
      for v = 1 to 120 do
        let idx = v mod nobj in
        Client.with_txn writer (fun () ->
            Client.update_object writer oids.(idx) ~off:0 (value ~idx ~version:v))
      done;
      (* The snapshot still sees the begin-time database, byte for
         byte — QSan is on, so the server is also replaying each
         materialized page from the WAL and comparing. *)
      Array.iteri
        (fun idx oid ->
          Alcotest.(check bytes)
            (Printf.sprintf "object %d as of snapshot" idx)
            (value ~idx ~version:0)
            (Client.snapshot_read_object reader oid))
        oids);
  Alcotest.(check int) "no retries needed" 0 (Client.snapshot_retries reader);
  (* Outside the snapshot, an ordinary locking read sees the tip. *)
  Client.with_txn reader (fun () ->
      Alcotest.(check bytes) "current read sees the tip" (value ~idx:0 ~version:120)
        (Client.read_object reader oids.(0)))

(* --- reclamation outruns the snapshot: Snapshot_too_old, retried --- *)

let test_too_old_retry () =
  let nobj = 2 in
  let server, writer, reader, oids = mk_world ~nobj () in
  (* A chain this short cannot absorb eight commits against one page:
     the oldest deltas are dropped and the old snapshot becomes
     unreachable. *)
  Server.set_versioning ~max_deltas:2 server true;
  let executions = ref 0 in
  let final =
    Client.with_snapshot_txn reader ~frames:8 ~sanitize:true ~max_attempts:4 (fun () ->
        incr executions;
        let a = Client.snapshot_read_object reader oids.(0) in
        (* Only the first execution grows page 1's chain past the
           bound; the body must be re-runnable, not re-run the world. *)
        if !executions = 1 then
          for v = 1 to 8 do
            Client.with_txn writer (fun () ->
                Client.update_object writer oids.(1) ~off:0 (value ~idx:1 ~version:v))
          done;
        (* First execution: page 2's chain no longer reaches back to
           our snapshot -> Snapshot_too_old -> the wrapper re-runs us
           at a fresh LSN. Second execution: both reads succeed. *)
        let b = Client.snapshot_read_object reader oids.(1) in
        (a, b))
  in
  Alcotest.(check int) "body ran twice" 2 !executions;
  Alcotest.(check int) "one reclamation retry" 1 (Client.snapshot_retries reader);
  (* The retried snapshot is fresh, so it sees the writer's tip. *)
  Alcotest.(check bytes) "retried read of page 1" (value ~idx:0 ~version:0) (fst final);
  Alcotest.(check bytes) "retried read of page 2" (value ~idx:1 ~version:8) (snd final)

let test_too_old_exhaustion () =
  let server, writer, reader, oids = mk_world ~nobj:2 () in
  Server.set_versioning ~max_deltas:1 server true;
  let vers = ref 0 in
  (* A body that overflows a chain it has not yet materialized on
     every execution can never finish: the wrapper must give up after
     [max_attempts] and let the exception out. *)
  match
    Client.with_snapshot_txn reader ~frames:4 ~max_attempts:2 (fun () ->
        ignore (Client.snapshot_read_object reader oids.(0));
        for _ = 1 to 4 do
          incr vers;
          let v = !vers in
          Client.with_txn writer (fun () ->
              Client.update_object writer oids.(1) ~off:0 (value ~idx:1 ~version:v))
        done;
        ignore (Client.snapshot_read_object reader oids.(1)))
  with
  | () -> Alcotest.fail "expected Snapshot_too_old to escape"
  | exception Version_store.Snapshot_too_old _ ->
    Alcotest.(check int) "both attempts consumed" 1 (Client.snapshot_retries reader);
    Alcotest.(check bool) "snapshot closed on failure" false (Client.in_snapshot reader)

(* --- crash recovery at the snapshot crash points --- *)

let crash_exn = function
  | F.Injected_crash _ | Server.Injected_crash | Server.Server_down -> true
  | _ -> false

(* Shared tail: take the crash, restart with QSan, and prove the
   committed world is intact and versioning comes back clean. *)
let recover_and_check ~server ~writer ~reader ~oids ~expect =
  Client.crash writer;
  Client.crash reader;
  Server.crash server;
  ignore (Recovery.restart ~sanitize:true server);
  Array.iteri
    (fun idx oid ->
      Alcotest.(check bytes)
        (Printf.sprintf "object %d after restart" idx)
        (expect idx)
        (Client.with_txn reader (fun () -> Client.read_object reader oid)))
    oids;
  (* Version chains are volatile: a restart drops them with versioning
     itself. Re-enabled, the snapshot path works immediately. *)
  Alcotest.(check bool) "versioning off after restart" true (Server.version_stats server = None);
  Server.set_versioning server true;
  Client.with_snapshot_txn reader ~frames:8 ~sanitize:true (fun () ->
      Array.iteri
        (fun idx oid ->
          Alcotest.(check bytes)
            (Printf.sprintf "object %d post-restart snapshot" idx)
            (expect idx)
            (Client.snapshot_read_object reader oid))
        oids)

let test_crash_at_materialize () =
  let fault = F.create () in
  let server, writer, reader, oids = mk_world ~fault ~nobj:3 () in
  Server.set_versioning server true;
  (* One committed update so the read below has a chain to walk. *)
  Client.with_txn writer (fun () ->
      Client.update_object writer oids.(0) ~off:0 (value ~idx:0 ~version:1));
  F.arm fault { F.no_faults with F.crash_point = Some (F.Point.snapshot_materialize, 1) };
  (match
     Client.with_snapshot_txn reader ~frames:8 (fun () ->
         ignore (Client.snapshot_read_object reader oids.(0)))
   with
  | () -> Alcotest.fail "expected the injected crash to fire"
  | exception e when crash_exn e -> ());
  F.disarm fault;
  recover_and_check ~server ~writer ~reader ~oids ~expect:(fun idx ->
      value ~idx ~version:(if idx = 0 then 1 else 0))

let test_crash_at_trim () =
  let fault = F.create () in
  let server, writer, reader, oids = mk_world ~fault ~nobj:3 () in
  Server.set_versioning server true;
  (* Committed updates build the deltas the reclamation pass will be
     mid-way through dropping when the crash fires. *)
  for v = 1 to 3 do
    Client.with_txn writer (fun () ->
        Client.update_object writer oids.(v mod 3) ~off:0 (value ~idx:(v mod 3) ~version:v))
  done;
  F.arm fault { F.no_faults with F.crash_point = Some (F.Point.snapshot_trim, 1) };
  (match Server.trim_versions server with
  | () -> Alcotest.fail "expected the injected crash to fire"
  | exception e when crash_exn e -> ());
  F.disarm fault;
  recover_and_check ~server ~writer ~reader ~oids ~expect:(fun idx ->
      value ~idx ~version:(if idx = 0 then 3 else idx))

(* --- the mapped store's read-only mode --- *)

let node_def =
  Schema.class_def "Node" [ ("id", Schema.F_int); ("next", Schema.F_ptr); ("tag", Schema.F_chars 12) ]

let mk_store () =
  let server =
    Server.create ~frames:512 ~clock:(Clock.create ()) ~cm:Simclock.Cost_model.default ()
  in
  let st = Store.create_db ~config:Quickstore.Qs_config.default server in
  Store.register_class st node_def;
  (server, st)

let build_list st ~n ~per_cluster =
  Store.begin_txn st;
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  let f_next = Store.field st ~cls:"Node" ~name:"next" in
  let cluster = ref (Store.new_cluster st) in
  let first = ref Store.null in
  let prev = ref Store.null in
  for i = 0 to n - 1 do
    if i mod per_cluster = 0 then cluster := Store.new_cluster st;
    let p = Store.create st ~cls:"Node" ~cluster:!cluster in
    Store.set_int st p f_id i;
    if Store.is_null !prev then first := p else Store.set_ptr st !prev f_next p;
    prev := p
  done;
  Store.set_root st "head" !first;
  Store.commit st

let walk st ~head =
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  let f_next = Store.field st ~cls:"Node" ~name:"next" in
  let rec go p i ok =
    if Store.is_null p then (i, ok)
    else go (Store.get_ptr st p f_next) (i + 1) (ok && Store.get_int st p f_id = i)
  in
  go head 0 true

(* The root directory reads through locked server objects, so the
   entry pointer is resolved in an ordinary transaction up front; the
   snapshot body then navigates pure VM pointers. *)
let resolve_head st =
  Store.begin_txn st;
  let head = Store.root st "head" in
  Store.commit st;
  head

let test_store_snapshot_read () =
  let server, st = mk_store () in
  build_list st ~n:40 ~per_cluster:8;
  Server.set_versioning server true;
  let head = resolve_head st in
  let count, ok =
    Store.with_snapshot_read st ~frames:32 (fun () ->
        Alcotest.(check bool) "in_snapshot inside the body" true (Store.in_snapshot st);
        walk st ~head)
  in
  Alcotest.(check int) "all nodes scanned" 40 count;
  Alcotest.(check bool) "fields as of the snapshot" true ok;
  Alcotest.(check bool) "snapshot closed" false (Store.in_snapshot st);
  (* The store still updates normally after a snapshot body. *)
  Store.begin_txn st;
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  Store.set_int st head f_id 4242;
  Store.commit st;
  Store.begin_txn st;
  Alcotest.(check int) "post-snapshot update visible" 4242 (Store.get_int st head f_id);
  Store.commit st

let test_store_snapshot_write_rejected () =
  let server, st = mk_store () in
  build_list st ~n:10 ~per_cluster:5;
  Server.set_versioning server true;
  let head = resolve_head st in
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  match Store.with_snapshot_read st ~frames:16 (fun () -> Store.set_int st head f_id 99) with
  | () -> Alcotest.fail "a write inside a snapshot body must not succeed"
  | exception Store.Snapshot_write _ ->
    Alcotest.(check bool) "snapshot closed after rejection" false (Store.in_snapshot st);
    (* The rejected write left no trace. *)
    Store.begin_txn st;
    Alcotest.(check int) "value untouched" 0 (Store.get_int st head f_id);
    Store.commit st

(* --- frozen frames (the VM mechanism underneath) --- *)

let test_vmsim_freeze () =
  let vm = Vmsim.create ~clock:(Clock.create ()) ~cm:Simclock.Cost_model.default () in
  Vmsim.map vm ~frame:2 ~buf:(Bytes.make Vmsim.frame_size 'q');
  Vmsim.set_prot vm ~frame:2 Vmsim.Prot_read;
  Vmsim.freeze vm ~frame:2;
  Alcotest.(check bool) "frozen" true (Vmsim.frozen vm ~frame:2);
  Alcotest.(check int) "reads pass through a frozen frame" (Char.code 'q')
    (Vmsim.read_u8 vm (2 * Vmsim.frame_size));
  (* The guard rejects protection {e escalation}: no code path — fault
     handler included — can make a frozen frame writable, so a raw
     write can only ever end in an unhandled write fault. *)
  (match Vmsim.set_prot vm ~frame:2 Vmsim.Prot_write with
  | () -> Alcotest.fail "escalating a frozen frame must raise"
  | exception Vmsim.Frozen_frame { frame } -> Alcotest.(check int) "faulting frame" 2 frame);
  (match Vmsim.write_u8 vm (2 * Vmsim.frame_size) 65 with
  | () -> Alcotest.fail "write to a frozen read-only frame must fault"
  | exception Vmsim.Unhandled_fault { access = Vmsim.Write; _ } -> ());
  (* Downgrades stay legal (the snapshot teardown path uses them). *)
  Vmsim.set_prot vm ~frame:2 Vmsim.Prot_none;
  Vmsim.set_prot vm ~frame:2 Vmsim.Prot_read;
  Vmsim.unfreeze vm ~frame:2;
  Alcotest.(check bool) "thawed" false (Vmsim.frozen vm ~frame:2);
  Vmsim.set_prot vm ~frame:2 Vmsim.Prot_write;
  Vmsim.write_u8 vm (2 * Vmsim.frame_size) 65;
  Alcotest.(check int) "writable after unfreeze" 65 (Vmsim.read_u8 vm (2 * Vmsim.frame_size))

let () =
  Alcotest.run "snapshot"
    [ ( "esm"
      , [ Alcotest.test_case "long scan vs 120 writer commits" `Quick test_long_scan_stability
        ; Alcotest.test_case "Snapshot_too_old retried at fresh LSN" `Quick test_too_old_retry
        ; Alcotest.test_case "retry exhaustion surfaces" `Quick test_too_old_exhaustion
        ; Alcotest.test_case "crash at snapshot.materialize" `Quick test_crash_at_materialize
        ; Alcotest.test_case "crash at snapshot.trim" `Quick test_crash_at_trim ] )
    ; ( "store"
      , [ Alcotest.test_case "with_snapshot_read scan" `Quick test_store_snapshot_read
        ; Alcotest.test_case "writes rejected in a body" `Quick test_store_snapshot_write_rejected ] )
    ; ( "vmsim"
      , [ Alcotest.test_case "frozen frames" `Quick test_vmsim_freeze ] ) ]
