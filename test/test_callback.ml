(* Callback locking (lib/esm copy table + client recall handling):
   inter-transaction caching must never serve stale bytes.

   Covers the protocol's race corners directly, without the scheduler
   where possible (recalls are synchronous calls, so two clients on one
   server exercise them single-threaded): retained hits with QSan
   byte-exactness both ways (positive and a poked-bytes negative),
   recall-before-exclusive-grant invalidation, deferral when the
   target page is dirty inside the holder's active transaction (never
   a silent invalidation), recalls to a crashed client (generation
   mismatch -> [Recall_dead] -> server forgets it), callback-induced
   deadlock under the deterministic scheduler with wound-wait
   recovery, and recovery replay with a stale copy table. The
   end-to-end soak of the same protocol lives in the mc/torture
   harnesses; this file pins the per-transition semantics. *)

module Server = Esm.Server
module Client = Esm.Client
module Recovery = Esm.Recovery
module Lock_mgr = Esm.Lock_mgr
module Page = Esm.Page
module Clock = Simclock.Clock

let mk () =
  let s = Server.create ~frames:128 ~clock:(Clock.create ()) ~cm:Simclock.Cost_model.default () in
  (s, Client.create ~frames:16 s)

let reconnect s = Client.create ~frames:16 s

let v tag = Bytes.of_string (Printf.sprintf "%-16s" tag)

(* One page with one object on it, committed, cache dropped: both
   clients start cold with the world durable. *)
let seed_object s c =
  let page = ref (-1) in
  let oid = ref None in
  Client.with_txn c (fun () ->
      let page_id, frame = Client.new_page c ~kind:Page.Small_obj in
      Client.unfix_page c ~frame;
      page := page_id;
      oid := Client.create_object c ~page_id (v "v0"));
  Client.reset_cache c;
  ignore s;
  match !oid with Some o -> (!page, o) | None -> Alcotest.fail "seed object did not fit"

let retained_hits c = (Client.callback_stats c).Client.retained_hits

(* --- retained hits and QSan byte-exactness ------------------------ *)

let test_retained_hit_counted () =
  let s, a = mk () in
  let _page, oid = seed_object s a in
  Client.enable_callbacks ~sanitize:true a;
  Client.with_txn a (fun () -> ignore (Client.read_object a oid));
  Alcotest.(check int) "first touch is a fetch, not a retained hit" 0 (retained_hits a);
  let reads_before = (Server.counters s).Server.client_reads in
  Client.with_txn a (fun () -> ignore (Client.read_object a oid));
  Client.with_txn a (fun () -> ignore (Client.read_object a oid));
  Alcotest.(check int) "two later transactions, two retained hits" 2 (retained_hits a);
  Alcotest.(check int)
    "no server read behind a retained hit" reads_before
    (Server.counters s).Server.client_reads

let test_retained_hit_sanitizer_catches_poke () =
  let s, a = mk () in
  let page, oid = seed_object s a in
  Client.enable_callbacks ~sanitize:true a;
  Client.with_txn a (fun () -> ignore (Client.read_object a oid));
  (* Corrupt the cached frame without marking it dirty: the copy is
     now clean-but-wrong, exactly what the retained-page crosscheck
     exists to catch on the next inter-transaction hit. *)
  (match Client.frame_of_page a page with
   | Some frame -> Bytes.set (Client.page_bytes a ~frame) (Page.page_size - 1) '!'
   | None -> Alcotest.fail "page not cached");
  (match Client.with_txn a (fun () -> ignore (Client.read_object a oid)) with
   | () -> Alcotest.fail "sanitizer missed a stale retained page"
   | exception Qs_util.Sanitizer.Sanitizer_violation viol ->
     Alcotest.(check string) "check id" "retained-page" viol.Qs_util.Sanitizer.check);
  ignore s

(* --- recall before an exclusive grant ----------------------------- *)

let test_recall_invalidates_before_write () =
  let s, a = mk () in
  let page, oid = seed_object s a in
  let b = reconnect s in
  Client.enable_callbacks ~sanitize:true a;
  Client.enable_callbacks ~sanitize:true b;
  let a_id = match Client.client_id a with Some id -> id | None -> Alcotest.fail "no id" in
  Client.with_txn a (fun () -> ignore (Client.read_object a oid));
  Alcotest.(check (list int)) "copy table lists the caching client" [ a_id ]
    (Server.copies_of s page);
  Client.with_txn b (fun () -> Client.update_object b oid ~off:0 (v "v1"));
  Alcotest.(check int) "one recall went out" 1 (Server.counters s).Server.callbacks_sent;
  Alcotest.(check bool) "clean copy evicted at the holder" true
    (Client.frame_of_page a page = None);
  Alcotest.(check bool) "holder no longer in the copy table" false
    (List.mem a_id (Server.copies_of s page));
  (* The refetch sees the new bytes (and is a fetch, not a hit). *)
  Client.with_txn a (fun () ->
      Alcotest.(check bytes) "refetched current bytes" (v "v1") (Client.read_object a oid));
  Alcotest.(check int) "invalidation never counts as retention" 0 (retained_hits a)

let test_recall_deferred_while_dirty () =
  let s, a = mk () in
  let _page, oid = seed_object s a in
  let b = reconnect s in
  Client.enable_callbacks ~sanitize:true a;
  Client.enable_callbacks ~sanitize:true b;
  (* A updates the page inside a still-open transaction: the frame is
     dirty and X-locked at A. B's write must find the recall deferred
     and the lock refused — never a silent invalidation of dirty
     work. *)
  Client.begin_txn a;
  Client.update_object a oid ~off:0 (v "a-dirty");
  (match Client.with_txn b (fun () -> Client.update_object b oid ~off:0 (v "b")) with
   | () -> Alcotest.fail "conflicting write slipped past the holder's lock"
   | exception Lock_mgr.Conflict _ -> ());
  Alcotest.(check int) "recall was deferred, not honored" 1
    (Server.counters s).Server.callbacks_deferred;
  Alcotest.(check int) "deferral recorded at the holder" 1
    (Client.callback_stats a).Client.recalls_deferred;
  Alcotest.(check bytes) "dirty bytes untouched" (v "a-dirty") (Client.read_object a oid);
  Client.commit a;
  (* The deferred copy drops with A's commit; B can now write and no
     stale copy of the page survives anywhere. *)
  Client.with_txn b (fun () -> Client.update_object b oid ~off:0 (v "b"));
  Client.with_txn a (fun () ->
      Alcotest.(check bytes) "holder rereads B's bytes" (v "b") (Client.read_object a oid))

let test_recall_to_crashed_client_is_dead () =
  let s, a = mk () in
  let page, oid = seed_object s a in
  let b = reconnect s in
  Client.enable_callbacks ~sanitize:true a;
  Client.enable_callbacks ~sanitize:true b;
  let a_id = match Client.client_id a with Some id -> id | None -> Alcotest.fail "no id" in
  Client.with_txn a (fun () -> ignore (Client.read_object a oid));
  (* A crashes without deregistering: the server still has its recall
     endpoint and copy-table entry. The generation check turns the
     next recall into [Recall_dead] and the server forgets A. *)
  Client.crash a;
  Client.with_txn b (fun () -> Client.update_object b oid ~off:0 (v "v1"));
  Alcotest.(check int) "recall reached the stale registration" 1
    (Server.counters s).Server.callbacks_sent;
  Alcotest.(check bool) "dead client purged from the copy table" false
    (List.mem a_id (Server.copies_of s page));
  (* Forgotten means no further recalls to A either. *)
  Client.with_txn b (fun () -> Client.update_object b oid ~off:0 (v "v2"));
  Alcotest.(check int) "no recall to a forgotten client" 1
    (Server.counters s).Server.callbacks_sent

(* --- callback-induced deadlock under the scheduler ---------------- *)

let test_callback_mode_deadlock_wound_wait () =
  (* Two clients, two objects on two pages, opposite update order,
     charges between the updates so the scheduler interleaves the lock
     acquisitions: the S->X / X->S cycle must be wounded and both
     transactions must eventually commit under callback locking. *)
  let s, c0 = mk () in
  let clock = Server.clock s in
  let page0 = ref (-1) and page1 = ref (-1) in
  let o = Array.make 2 None in
  Client.with_txn c0 (fun () ->
      let p0, f0 = Client.new_page c0 ~kind:Page.Small_obj in
      Client.unfix_page c0 ~frame:f0;
      let p1, f1 = Client.new_page c0 ~kind:Page.Small_obj in
      Client.unfix_page c0 ~frame:f1;
      page0 := p0;
      page1 := p1;
      o.(0) <- Client.create_object c0 ~page_id:p0 (v "o0-v0");
      o.(1) <- Client.create_object c0 ~page_id:p1 (v "o1-v0"));
  Client.reset_cache c0;
  let oid i = match o.(i) with Some x -> x | None -> Alcotest.fail "seed" in
  let cls = [| c0; reconnect s |] in
  Array.iter (fun c -> Client.enable_callbacks ~sanitize:true c) cls;
  let retried = ref 0 in
  let sched = Sched.create ~seed:11 ~clocks:[ clock ] () in
  for c = 0 to 1 do
    Sched.spawn sched ~name:(Printf.sprintf "client-%d" c) (fun () ->
        let mine = c and theirs = 1 - c in
        Client.with_txn_retrying ~max_attempts:8
          ~on_retry:(fun ~attempt:_ -> incr retried)
          cls.(c)
          (fun () ->
            Client.update_object cls.(c) (oid mine) ~off:0 (v (Printf.sprintf "c%d-first" c));
            Clock.charge clock Simclock.Category.App_work 500.0;
            Client.update_object cls.(c) (oid theirs) ~off:0 (v (Printf.sprintf "c%d-second" c))))
  done;
  List.iter
    (fun (name, e) ->
      match e with
      | None -> ()
      | Some e -> Alcotest.failf "task %s died: %s" name (Printexc.to_string e))
    (Sched.run sched);
  Alcotest.(check bool) "the cross order deadlocked at least once" true (!retried > 0);
  (* Both committed: each object carries some committed "-second" or
     "-first" tag, and the copy table agrees with the client pools —
     every listed holder really caches the page, nobody else does. *)
  List.iter
    (fun page ->
      let holders = Server.copies_of s page in
      Array.iteri
        (fun i c ->
          match Client.client_id c with
          | None -> Alcotest.fail "client lost its registration"
          | Some id ->
            Alcotest.(check bool)
              (Printf.sprintf "copy table matches pool (client %d, page %d)" i page)
              (List.mem id holders)
              (Client.frame_of_page c page <> None))
        cls)
    [ !page0; !page1 ];
  Client.with_txn cls.(0) (fun () ->
      List.iter (fun i -> ignore (Client.read_object cls.(0) (oid i))) [ 0; 1 ])

(* --- recovery with a stale copy table ----------------------------- *)

let test_restart_discards_copy_table () =
  let s, a = mk () in
  let page, oid = seed_object s a in
  let b = reconnect s in
  Client.enable_callbacks ~sanitize:true a;
  Client.enable_callbacks ~sanitize:true b;
  Client.with_txn a (fun () -> ignore (Client.read_object a oid));
  Client.with_txn b (fun () -> Client.update_object b oid ~off:0 (v "committed"));
  (* Crash with a populated copy table (B holds a copy of its own
     write). Restart replays the log; the copy table must come back
     empty — no recall endpoint survives a server crash. *)
  Client.crash a;
  Client.crash b;
  Server.crash s;
  ignore (Recovery.restart ~sanitize:true s);
  Alcotest.(check (list int)) "copy table empty after restart" [] (Server.copies_of s page);
  Alcotest.(check bool) "crashed client is deregistered" true (Client.client_id a = None);
  (* Re-registration starts a fresh protocol incarnation: caching,
     retained hits and recalls all work against the replayed state. *)
  Client.enable_callbacks ~sanitize:true a;
  Client.with_txn a (fun () ->
      Alcotest.(check bytes) "replayed bytes" (v "committed") (Client.read_object a oid));
  Client.with_txn a (fun () -> ignore (Client.read_object a oid));
  Alcotest.(check int) "retention works after restart" 1 (retained_hits a);
  let b2 = reconnect s in
  Client.enable_callbacks ~sanitize:true b2;
  Client.with_txn b2 (fun () -> Client.update_object b2 oid ~off:0 (v "post-restart"));
  Alcotest.(check bool) "recalls work after restart" true
    ((Server.counters s).Server.callbacks_sent > 0);
  Client.with_txn a (fun () ->
      Alcotest.(check bytes) "refetched post-restart bytes" (v "post-restart")
        (Client.read_object a oid))

(* --- cross-client group commit ------------------------------------ *)

let test_mc_callback_mode_counters () =
  (* The 4-client contention harness in callback mode is the
     integration surface: retained hits occur, recalls go out, and at
     least one log force ride is credited to a different client than
     the force owner (cross-client group commit). The reset-mode run
     must stay byte-identical to history, so compare reads too. *)
  let on = Harness.Mc.run ~clients:4 ~seed:42 ~callbacks:true () in
  let off = Harness.Mc.run ~clients:4 ~seed:42 ~callbacks:false () in
  Alcotest.(check int) "both regimes commit everything" off.Harness.Mc.committed
    on.Harness.Mc.committed;
  Alcotest.(check bool) "retained hits occurred" true (on.Harness.Mc.retained_hits > 0);
  Alcotest.(check bool) "recalls went out" true (on.Harness.Mc.callbacks_sent > 0);
  Alcotest.(check bool) "some recalls deferred" true (on.Harness.Mc.callbacks_deferred > 0);
  Alcotest.(check bool) "strictly fewer server page reads with callbacks" true
    (on.Harness.Mc.reads < off.Harness.Mc.reads);
  Alcotest.(check bool) "cross-client group-commit rides happened" true
    (on.Harness.Mc.gc_cross_rides > 0);
  Alcotest.(check int) "reset mode reports no callback activity" 0
    (off.Harness.Mc.retained_hits + off.Harness.Mc.callbacks_sent)

let () =
  Alcotest.run "callback"
    [ ( "retained"
      , [ Alcotest.test_case "retained hit counted once per txn" `Quick test_retained_hit_counted
        ; Alcotest.test_case "sanitizer catches poked retained page" `Quick
            test_retained_hit_sanitizer_catches_poke ] )
    ; ( "recall"
      , [ Alcotest.test_case "invalidate before exclusive grant" `Quick
            test_recall_invalidates_before_write
        ; Alcotest.test_case "defer while dirty in active txn" `Quick
            test_recall_deferred_while_dirty
        ; Alcotest.test_case "dead recall to crashed client" `Quick
            test_recall_to_crashed_client_is_dead ] )
    ; ( "scheduler"
      , [ Alcotest.test_case "deadlock wound-wait in callback mode" `Quick
            test_callback_mode_deadlock_wound_wait
        ; Alcotest.test_case "mc callback counters" `Quick test_mc_callback_mode_counters ] )
    ; ( "recovery"
      , [ Alcotest.test_case "restart discards the copy table" `Quick
            test_restart_discards_copy_table ] )
    ]
