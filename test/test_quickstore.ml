(* QuickStore core tests: faulting, swizzling, relocation, diffing
   recovery-buffer behaviour, large-object descriptor splitting, the
   simplified clock under paging, and crash recovery. *)

module Store = Quickstore.Store
module Qs_config = Quickstore.Qs_config
module Rec_buffer = Quickstore.Rec_buffer
module Server = Esm.Server
module Clock = Simclock.Clock
module Cat = Simclock.Category

let node_def =
  Schema.class_def "Node" [ ("id", Schema.F_int); ("next", Schema.F_ptr); ("tag", Schema.F_chars 12) ]

let mk ?(config = Qs_config.default) ?(server_frames = 512) () =
  let server =
    Server.create ~frames:server_frames ~clock:(Clock.create ()) ~cm:Simclock.Cost_model.default ()
  in
  let st = Store.create_db ~config server in
  Store.register_class st node_def;
  (server, st)

(* Build a linked list of [n] nodes, [per_cluster] nodes per cluster
   (forcing multiple pages), rooted at "head". *)
let build_list st ~n ~per_cluster =
  Store.begin_txn st;
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  let f_next = Store.field st ~cls:"Node" ~name:"next" in
  let f_tag = Store.field st ~cls:"Node" ~name:"tag" in
  let cluster = ref (Store.new_cluster st) in
  let first = ref Store.null in
  let prev = ref Store.null in
  for i = 0 to n - 1 do
    if i mod per_cluster = 0 then cluster := Store.new_cluster st;
    let p = Store.create st ~cls:"Node" ~cluster:!cluster in
    Store.set_int st p f_id i;
    Store.set_chars st p f_tag (Printf.sprintf "node-%d" i);
    if Store.is_null !prev then first := p else Store.set_ptr st !prev f_next p;
    prev := p
  done;
  Store.set_root st "head" !first;
  Store.commit st

let walk_list st =
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  let f_next = Store.field st ~cls:"Node" ~name:"next" in
  let f_tag = Store.field st ~cls:"Node" ~name:"tag" in
  let rec go p i acc =
    if Store.is_null p then (i, acc)
    else begin
      let id = Store.get_int st p f_id in
      let tag = Qs_util.Codec.get_cstring (Bytes.of_string (Store.get_chars st p f_tag)) 0 12 in
      let ok = acc && id = i && tag = Printf.sprintf "node-%d" i in
      go (Store.get_ptr st p f_next) (i + 1) ok
    end
  in
  go (Store.root st "head") 0 true

let test_create_and_walk () =
  let _server, st = mk () in
  build_list st ~n:100 ~per_cluster:10;
  Store.begin_txn st;
  let count, ok = walk_list st in
  Alcotest.(check int) "all nodes" 100 count;
  Alcotest.(check bool) "fields intact" true ok;
  Alcotest.(check bool) "mapping invariants" true (Store.mapping_invariants_hold st);
  Store.commit st

let test_cold_walk_faults () =
  let _server, st = mk () in
  build_list st ~n:200 ~per_cluster:20;
  Store.reset_caches st;
  Store.reset_stats st;
  Store.begin_txn st;
  let count, ok = walk_list st in
  Alcotest.(check int) "nodes" 200 count;
  Alcotest.(check bool) "intact" true ok;
  let s = Store.stats st in
  Alcotest.(check bool) "hard faults happened" true (s.Store.hard_faults >= 10);
  Alcotest.(check int) "no pointer rewrites without relocation" 0 s.Store.ptrs_rewritten;
  (* Hot re-walk inside the same transaction: zero additional faults. *)
  let before = s.Store.hard_faults + s.Store.soft_faults in
  let _, ok2 = walk_list st in
  Alcotest.(check bool) "hot intact" true ok2;
  let after = s.Store.hard_faults + s.Store.soft_faults in
  Alcotest.(check int) "hot walk faults nothing" before after;
  Store.commit st

let test_static_mapping_across_runs () =
  (* The same disk page must land on the same virtual frame across cold
     runs (no relocation), so stored pointers never need rewriting. *)
  let _server, st = mk () in
  build_list st ~n:150 ~per_cluster:15;
  Store.reset_caches st;
  Store.reset_stats st;
  Store.begin_txn st;
  ignore (walk_list st);
  Store.commit st;
  Alcotest.(check int) "run 1: nothing relocated" 0 (Store.stats st).Store.relocations;
  Store.reset_caches st;
  Store.reset_stats st;
  Store.begin_txn st;
  let n, ok = walk_list st in
  Store.commit st;
  Alcotest.(check int) "run 2 nodes" 150 n;
  Alcotest.(check bool) "run 2 intact" true ok;
  Alcotest.(check int) "run 2: nothing relocated" 0 (Store.stats st).Store.relocations;
  Alcotest.(check int) "run 2: nothing swizzled" 0 (Store.stats st).Store.pages_swizzled

let test_update_commit_durable () =
  let server, st = mk () in
  build_list st ~n:50 ~per_cluster:10;
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  let f_next = Store.field st ~cls:"Node" ~name:"next" in
  Store.begin_txn st;
  (* Add 1000 to every node id. *)
  let rec bump p =
    if not (Store.is_null p) then begin
      Store.set_int st p f_id (Store.get_int st p f_id + 1000);
      bump (Store.get_ptr st p f_next)
    end
  in
  bump (Store.root st "head");
  Store.commit st;
  Alcotest.(check bool) "pages were diffed" true ((Store.stats st).Store.pages_diffed > 0);
  Alcotest.(check bool) "log records generated" true ((Store.stats st).Store.diff_log_records > 0);
  Store.reset_caches st;
  ignore server;
  Store.begin_txn st;
  let rec verify p i ok =
    if Store.is_null p then ok
    else verify (Store.get_ptr st p f_next) (i + 1) (ok && Store.get_int st p f_id = i + 1000)
  in
  Alcotest.(check bool) "updates durable after cache reset" true
    (verify (Store.root st "head") 0 true);
  Store.commit st

let test_abort_restores () =
  let _server, st = mk () in
  build_list st ~n:20 ~per_cluster:20;
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  Store.begin_txn st;
  let head = Store.root st "head" in
  Store.set_int st head f_id 99999;
  Store.abort st;
  Store.begin_txn st;
  Alcotest.(check int) "aborted update gone" 0 (Store.get_int st (Store.root st "head") f_id);
  Store.commit st

let test_crash_recovery () =
  let server, st = mk () in
  build_list st ~n:40 ~per_cluster:10;
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  Store.begin_txn st;
  let head = Store.root st "head" in
  Store.set_int st head f_id 777;
  Store.commit st;
  Server.crash server;
  ignore (Esm.Recovery.restart server);
  (* Fresh store attached to the recovered volume. *)
  let st2 = Store.open_db server in
  Store.begin_txn st2;
  Alcotest.(check int) "committed update recovered" 777
    (Store.get_int st2 (Store.root st2 "head") (Store.field st2 ~cls:"Node" ~name:"id"));
  Store.commit st2

let test_relocation_continual () =
  let config = { Qs_config.default with Qs_config.reloc = Qs_config.Continual 1.0 } in
  let _server, st = mk ~config () in
  build_list st ~n:120 ~per_cluster:12;
  Store.reset_caches st;
  Store.reset_stats st;
  Store.begin_txn st;
  let n, ok = walk_list st in
  Store.commit st;
  Alcotest.(check int) "nodes under full relocation" 120 n;
  Alcotest.(check bool) "values correct after swizzling" true ok;
  let s = Store.stats st in
  Alcotest.(check bool) "relocations happened" true (s.Store.relocations > 5);
  Alcotest.(check bool) "pointers rewritten" true (s.Store.ptrs_rewritten > 50);
  (* Continual relocation never writes the new mapping back: the next
     cold run must swizzle again. *)
  Store.reset_caches st;
  Store.reset_stats st;
  Store.begin_txn st;
  let n2, ok2 = walk_list st in
  Store.commit st;
  Alcotest.(check bool) "second run re-swizzles" true ((Store.stats st).Store.ptrs_rewritten > 50);
  Alcotest.(check bool) "second run intact" true (n2 = 120 && ok2)

let test_relocation_one_time () =
  let server, st = mk ~config:{ Qs_config.default with Qs_config.reloc = Qs_config.One_time 1.0 } () in
  build_list st ~n:120 ~per_cluster:12;
  Store.reset_caches st;
  Store.reset_stats st;
  Store.begin_txn st;
  let n, ok = walk_list st in
  Store.commit st;
  Alcotest.(check bool) "first OR run relocates and survives" true (n = 120 && ok);
  Alcotest.(check bool) "OR swizzled" true ((Store.stats st).Store.ptrs_rewritten > 50);
  (* The new mapping was committed: a no-relocation store reading the
     same database must find fully consistent pointers. *)
  let st2 = Store.open_db server in
  Store.reset_caches st2;
  Store.begin_txn st2;
  let f_id = Store.field st2 ~cls:"Node" ~name:"id" in
  let f_next = Store.field st2 ~cls:"Node" ~name:"next" in
  let rec go p i = if Store.is_null p then i else begin
      Alcotest.(check int) "id in order" i (Store.get_int st2 p f_id);
      go (Store.get_ptr st2 p f_next) (i + 1)
    end
  in
  Alcotest.(check int) "all nodes via committed mapping" 120 (go (Store.root st2 "head") 0);
  Store.commit st2;
  Alcotest.(check int) "no swizzling needed after OR commit" 0 (Store.stats st2).Store.pages_swizzled

let test_rec_buffer_overflow () =
  (* A recovery buffer smaller than the update set forces mid-commit
     flushes (the paper's QS-B T2B/T2C effect). *)
  let config = { Qs_config.default with Qs_config.rec_buffer_bytes = 4 * 8192 } in
  let _server, st = mk ~config () in
  build_list st ~n:200 ~per_cluster:10;
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  let f_next = Store.field st ~cls:"Node" ~name:"next" in
  Store.begin_txn st;
  let rec bump p =
    if not (Store.is_null p) then begin
      Store.set_int st p f_id (Store.get_int st p f_id + 5);
      bump (Store.get_ptr st p f_next)
    end
  in
  bump (Store.root st "head");
  Store.commit st;
  Alcotest.(check bool) "overflow happened" true ((Store.stats st).Store.rec_buffer_overflows > 0);
  Store.reset_caches st;
  Store.begin_txn st;
  let rec verify p i ok =
    if Store.is_null p then ok
    else verify (Store.get_ptr st p f_next) (i + 1) (ok && Store.get_int st p f_id = i + 5)
  in
  Alcotest.(check bool) "all updates durable despite overflow" true
    (verify (Store.root st "head") 0 true);
  Store.commit st

let test_paging_small_pool () =
  (* Client pool of 16 frames, ~40 data pages plus metadata: the
     simplified clock must page correctly and data stays intact. *)
  let config = { Qs_config.default with Qs_config.client_frames = 16 } in
  let _server, st = mk ~config () in
  build_list st ~n:400 ~per_cluster:10;
  Store.reset_caches st;
  Store.begin_txn st;
  for _ = 1 to 3 do
    let n, ok = walk_list st in
    Alcotest.(check bool) "walk under paging" true (n = 400 && ok)
  done;
  Store.commit st

let test_paging_with_updates () =
  let config = { Qs_config.default with Qs_config.client_frames = 16 } in
  let _server, st = mk ~config () in
  build_list st ~n:400 ~per_cluster:10;
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  let f_next = Store.field st ~cls:"Node" ~name:"next" in
  Store.reset_caches st;
  Store.begin_txn st;
  let rec bump p =
    if not (Store.is_null p) then begin
      Store.set_int st p f_id (Store.get_int st p f_id + 1);
      bump (Store.get_ptr st p f_next)
    end
  in
  bump (Store.root st "head");
  Store.commit st;
  Store.reset_caches st;
  Store.begin_txn st;
  let rec verify p i ok =
    if Store.is_null p then ok
    else verify (Store.get_ptr st p f_next) (i + 1) (ok && Store.get_int st p f_id = i + 1)
  in
  Alcotest.(check bool) "stolen dirty pages logged correctly" true
    (verify (Store.root st "head") 0 true);
  Store.commit st

let test_large_object () =
  let _server, st = mk () in
  Store.begin_txn st;
  let manual = Store.create_large st ~size:100_000 in
  let data = Bytes.init 100 (fun i -> Char.chr (65 + (i mod 26))) in
  Store.large_write st manual ~off:0 data;
  Store.large_write st manual ~off:99_900 data;
  (* Stash it behind a node so it can be found again. *)
  let cluster = Store.new_cluster st in
  let holder = Store.create st ~cls:"Node" ~cluster in
  Store.set_ptr st holder (Store.field st ~cls:"Node" ~name:"next") manual;
  Store.set_root st "holder" holder;
  Store.commit st;
  Store.reset_caches st;
  Store.begin_txn st;
  let holder = Store.root st "holder" in
  let manual = Store.get_ptr st holder (Store.field st ~cls:"Node" ~name:"next") in
  Alcotest.(check int) "size" 100_000 (Store.large_size st manual);
  let tables_before = Store.mapping_table_size st in
  Alcotest.(check char) "first byte" 'A' (Store.large_byte st manual 0);
  Alcotest.(check char) "last region byte" 'A' (Store.large_byte st manual 99_900);
  Alcotest.(check char) "untouched zero" '\000' (Store.large_byte st manual 50_000);
  (* Descriptor splitting happened: accessing 3 scattered pages turns
     one range descriptor into several (Figure 3). *)
  Alcotest.(check bool) "descriptor split" true (Store.mapping_table_size st > tables_before);
  Alcotest.(check bool) "mapping invariants after splits" true (Store.mapping_invariants_hold st);
  Store.commit st

let test_large_scan () =
  let _server, st = mk () in
  Store.begin_txn st;
  let manual = Store.create_large st ~size:50_000 in
  let pat = Bytes.init 50_000 (fun i -> Char.chr (i mod 251)) in
  Store.large_write st manual ~off:0 pat;
  let cluster = Store.new_cluster st in
  let holder = Store.create st ~cls:"Node" ~cluster in
  Store.set_ptr st holder (Store.field st ~cls:"Node" ~name:"next") manual;
  Store.set_root st "holder" holder;
  Store.commit st;
  Store.reset_caches st;
  Store.begin_txn st;
  let manual =
    Store.get_ptr st (Store.root st "holder") (Store.field st ~cls:"Node" ~name:"next")
  in
  let ok = ref true in
  for i = 0 to 49_999 do
    if Store.large_byte st manual i <> Char.chr (i mod 251) then ok := false
  done;
  Alcotest.(check bool) "full scan matches" true !ok;
  Store.commit st

let test_index_roundtrip () =
  let _server, st = mk () in
  build_list st ~n:100 ~per_cluster:10;
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  let f_next = Store.field st ~cls:"Node" ~name:"next" in
  Store.begin_txn st;
  Store.index_create st "by_id" ~klen:8;
  let rec index p =
    if not (Store.is_null p) then begin
      Store.index_insert st "by_id" ~key:(Esm.Btree.key_of_int ~klen:8 (Store.get_int st p f_id)) p;
      index (Store.get_ptr st p f_next)
    end
  in
  index (Store.root st "head");
  Store.commit st;
  Store.reset_caches st;
  Store.begin_txn st;
  (match Store.index_lookup st "by_id" ~key:(Esm.Btree.key_of_int ~klen:8 42) with
   | Some p -> Alcotest.(check int) "index lookup" 42 (Store.get_int st p f_id)
   | None -> Alcotest.fail "missing key 42");
  let seen = ref [] in
  Store.index_range st "by_id" ~lo:(Esm.Btree.key_of_int ~klen:8 10)
    ~hi:(Esm.Btree.key_of_int ~klen:8 14) (fun p -> seen := Store.get_int st p f_id :: !seen);
  Alcotest.(check (list int)) "range scan" [ 10; 11; 12; 13; 14 ] (List.rev !seen);
  Store.commit st

let test_qs_b_padding () =
  let _server, st = mk ~config:{ Qs_config.default with Qs_config.mode = Qs_config.Big_objects } () in
  let l = Store.layout st "Node" in
  (* Node under E: id 4 + next 16 + tag 12 = 32; under QS: 4+4+12 = 20. *)
  Alcotest.(check int) "QS-B object padded to E size" 32 l.Schema.l_size;
  build_list st ~n:50 ~per_cluster:10;
  Store.reset_caches st;
  Store.begin_txn st;
  let n, ok = walk_list st in
  Alcotest.(check bool) "QS-B walks correctly" true (n = 50 && ok);
  Store.commit st

(* Texas/Wilson page-offset pointer format (QS-W): everything works
   across cold restarts, pointers on disk are page-offset pairs, and
   the database carries no mapping objects. *)
let test_offsets_format_roundtrip () =
  let config = { Qs_config.default with Qs_config.ptr_format = Qs_config.Page_offsets } in
  let _server, st = mk ~config () in
  Alcotest.(check string) "system name" "QS-W" (Store.system_name st);
  build_list st ~n:150 ~per_cluster:15;
  Store.reset_caches st;
  Store.reset_stats st;
  Store.begin_txn st;
  let n, ok = walk_list st in
  Store.commit st;
  Alcotest.(check bool) "cold walk" true (n = 150 && ok);
  (* Every faulted page was swizzled (that is the scheme's cost). *)
  Alcotest.(check bool) "pages swizzled" true ((Store.stats st).Store.pages_swizzled >= 10);
  Alcotest.(check bool) "pointers rewritten" true ((Store.stats st).Store.ptrs_rewritten >= 140)

let test_offsets_format_update () =
  let config = { Qs_config.default with Qs_config.ptr_format = Qs_config.Page_offsets } in
  let _server, st = mk ~config () in
  build_list st ~n:100 ~per_cluster:10;
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  let f_next = Store.field st ~cls:"Node" ~name:"next" in
  Store.reset_caches st;
  Store.begin_txn st;
  let rec bump p =
    if not (Store.is_null p) then begin
      Store.set_int st p f_id (Store.get_int st p f_id + 9);
      bump (Store.get_ptr st p f_next)
    end
  in
  bump (Store.root st "head");
  Store.commit st;
  Store.reset_caches st;
  Store.begin_txn st;
  let rec verify p i ok =
    if Store.is_null p then ok
    else verify (Store.get_ptr st p f_next) (i + 1) (ok && Store.get_int st p f_id = i + 9)
  in
  Alcotest.(check bool) "updates durable in disk format" true (verify (Store.root st "head") 0 true);
  Store.commit st

let test_offsets_format_paging () =
  (* Dirty pages stolen mid-transaction must be unswizzled on the way
     out and re-swizzled on reload. *)
  let config =
    { Qs_config.default with
      Qs_config.ptr_format = Qs_config.Page_offsets
    ; Qs_config.client_frames = 16 }
  in
  let _server, st = mk ~config () in
  build_list st ~n:400 ~per_cluster:10;
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  let f_next = Store.field st ~cls:"Node" ~name:"next" in
  Store.reset_caches st;
  Store.begin_txn st;
  let rec bump p =
    if not (Store.is_null p) then begin
      Store.set_int st p f_id (Store.get_int st p f_id + 1);
      bump (Store.get_ptr st p f_next)
    end
  in
  bump (Store.root st "head");
  Store.commit st;
  Store.reset_caches st;
  Store.begin_txn st;
  let rec verify p i ok =
    if Store.is_null p then ok
    else verify (Store.get_ptr st p f_next) (i + 1) (ok && Store.get_int st p f_id = i + 1)
  in
  Alcotest.(check bool) "steal/unswizzle/reload" true (verify (Store.root st "head") 0 true);
  Store.commit st

let test_offsets_rejects_relocation () =
  let config =
    { Qs_config.default with
      Qs_config.ptr_format = Qs_config.Page_offsets
    ; Qs_config.reloc = Qs_config.Continual 0.5 }
  in
  let server = Server.create ~frames:64 ~clock:(Clock.create ()) ~cm:Simclock.Cost_model.default () in
  Alcotest.check_raises "reloc is a VM-format concept"
    (Invalid_argument "QuickStore: relocation modes apply to VM-address pointers only") (fun () ->
      ignore (Store.create_db ~config server))

let test_cost_categories_charged () =
  let server, st = mk () in
  build_list st ~n:100 ~per_cluster:10;
  let clock = Server.clock server in
  Store.reset_caches st;
  Clock.reset clock;
  Store.begin_txn st;
  ignore (walk_list st);
  Store.commit st;
  let pos cat = Clock.category_us clock cat > 0.0 in
  Alcotest.(check bool) "data I/O" true (pos Cat.Data_io);
  Alcotest.(check bool) "map I/O" true (pos Cat.Map_io);
  Alcotest.(check bool) "page faults" true (pos Cat.Page_fault);
  Alcotest.(check bool) "min faults" true (pos Cat.Min_fault);
  Alcotest.(check bool) "mmap" true (pos Cat.Mmap_call);
  Alcotest.(check bool) "swizzle entries" true (pos Cat.Swizzle);
  Alcotest.(check bool) "no diffing in read-only txn" false (pos Cat.Diff)

let test_diff_regions () =
  let old_bytes = Bytes.make 1000 'a' in
  let new_bytes = Bytes.copy old_bytes in
  Alcotest.(check (list (pair int int))) "no change" []
    (Rec_buffer.diff_regions ~old_bytes ~new_bytes ~gap:25);
  (* First and last byte: far apart, two records (the paper's 1K
     object example). *)
  Bytes.set new_bytes 0 'X';
  Bytes.set new_bytes 999 'Y';
  Alcotest.(check (list (pair int int))) "two distant regions" [ (0, 1); (999, 1) ]
    (Rec_buffer.diff_regions ~old_bytes ~new_bytes ~gap:25);
  (* Bytes 0, 2, 4 modified: gaps of 1 coalesce into one region. *)
  let new2 = Bytes.copy old_bytes in
  Bytes.set new2 0 'X';
  Bytes.set new2 2 'X';
  Bytes.set new2 4 'X';
  Alcotest.(check (list (pair int int))) "coalesced" [ (0, 5) ]
    (Rec_buffer.diff_regions ~old_bytes ~new_bytes:new2 ~gap:25)

let prop_diff_patch_identity =
  QCheck.Test.make ~name:"applying diff regions to old yields new" ~count:200
    QCheck.(pair (int_range 1 40) (list (pair (int_bound 499) (int_bound 255))))
    (fun (gap, writes) ->
      let old_bytes = Bytes.make 500 'o' in
      let new_bytes = Bytes.copy old_bytes in
      List.iter (fun (i, v) -> Bytes.set new_bytes i (Char.chr v)) writes;
      let regions = Rec_buffer.diff_regions ~old_bytes ~new_bytes ~gap in
      let patched = Bytes.copy old_bytes in
      List.iter (fun (off, len) -> Bytes.blit new_bytes off patched off len) regions;
      Bytes.equal patched new_bytes)

let prop_diff_minimal_vs_whole =
  QCheck.Test.make ~name:"diffing never logs more than whole-page logging" ~count:100
    QCheck.(list (pair (int_bound 8191) (int_bound 255)))
    (fun writes ->
      let old_bytes = Bytes.make 8192 'o' in
      let new_bytes = Bytes.copy old_bytes in
      List.iter (fun (i, v) -> Bytes.set new_bytes i (Char.chr v)) writes;
      let regions = Rec_buffer.diff_regions ~old_bytes ~new_bytes ~gap:25 in
      let logged = Rec_buffer.log_bytes_of_regions regions in
      (writes = [] && logged = 0) || logged <= Esm.Wal.header_bytes + (2 * 8192))

(* Model-based property: a random interleaving of field updates,
   commits, aborts and cache resets against an in-memory model of the
   committed + pending state. *)
let prop_store_transaction_model =
  QCheck.Test.make ~name:"store agrees with transactional model" ~count:25
    QCheck.(list (pair (int_bound 49) (int_bound 9)))
    (fun ops ->
      let _server, st = mk () in
      build_list st ~n:50 ~per_cluster:10;
      let f_id = Store.field st ~cls:"Node" ~name:"id" in
      let f_next = Store.field st ~cls:"Node" ~name:"next" in
      let committed = Array.init 50 (fun i -> i) in
      let pending = Array.copy committed in
      let nodes st =
        let rec go p acc = if Store.is_null p then List.rev acc else go (Store.get_ptr st p f_next) (p :: acc) in
        Array.of_list (go (Store.root st "head") [])
      in
      Store.begin_txn st;
      let node_arr = ref (nodes st) in
      let ok = ref true in
      List.iter
        (fun (idx, action) ->
          match action with
          | 0 | 1 | 2 | 3 | 4 ->
            (* update node idx: id += action+1 *)
            let p = !node_arr.(idx) in
            Store.set_int st p f_id (Store.get_int st p f_id + action + 1);
            pending.(idx) <- pending.(idx) + action + 1
          | 5 | 6 ->
            Store.commit st;
            Array.blit pending 0 committed 0 50;
            Store.begin_txn st;
            node_arr := nodes st
          | 7 ->
            Store.abort st;
            Array.blit committed 0 pending 0 50;
            Store.begin_txn st;
            node_arr := nodes st
          | _ ->
            (* full cold restart between transactions *)
            Store.commit st;
            Array.blit pending 0 committed 0 50;
            Store.reset_caches st;
            Store.begin_txn st;
            node_arr := nodes st)
        ops;
      (* verify current (pending) state *)
      Array.iteri
        (fun i p -> if Store.get_int st p f_id <> pending.(i) then ok := false)
        !node_arr;
      Store.commit st;
      !ok)

let prop_walk_after_random_relocation =
  QCheck.Test.make ~name:"walk survives any relocation fraction" ~count:10
    QCheck.(float_bound_inclusive 1.0)
    (fun frac ->
      let config = { Qs_config.default with Qs_config.reloc = Qs_config.Continual frac } in
      let _server, st = mk ~config () in
      build_list st ~n:80 ~per_cluster:8;
      Store.reset_caches st;
      Store.begin_txn st;
      let n, ok = walk_list st in
      Store.commit st;
      n = 80 && ok)

(* --- QSan: the address-space sanitizer (Qs_config.sanitize) --- *)

let sanitize_config = { Qs_config.default with Qs_config.sanitize = true }

(* A full build / cold walk / update / commit cycle with the sanitizer
   validating at every fault and at commit must be violation-free. *)
let test_sanitize_clean_run () =
  let _server, st = mk ~config:sanitize_config () in
  build_list st ~n:120 ~per_cluster:12;
  Store.reset_caches st;
  Store.begin_txn st;
  let n, ok = walk_list st in
  Alcotest.(check int) "all nodes" 120 n;
  Alcotest.(check bool) "fields intact" true ok;
  let f_id = Store.field st ~cls:"Node" ~name:"id" in
  let head = Store.root st "head" in
  Store.set_int st head f_id 9999;
  Store.commit st;
  Store.validate st;
  Store.begin_txn st;
  Alcotest.(check int) "update durable" 9999 (Store.get_int st head f_id);
  Store.commit st

(* Same, under memory pressure: evictions and re-faults must keep the
   mapping table, pool residency and protection bits in agreement. *)
let test_sanitize_under_eviction () =
  let config = { sanitize_config with Qs_config.client_frames = 16 } in
  let _server, st = mk ~config () in
  build_list st ~n:400 ~per_cluster:10;
  Store.reset_caches st;
  for _ = 1 to 2 do
    Store.begin_txn st;
    let n, ok = walk_list st in
    Alcotest.(check int) "all nodes" 400 n;
    Alcotest.(check bool) "fields intact" true ok;
    Store.commit st
  done;
  Store.validate st

(* Injected corruption: escalate a read-protected frame to write
   access behind the store's back. QSan must flag the page as
   write-enabled-without-snapshot rather than let an unlogged update
   slip past commit diffing. *)
let test_sanitize_catches_prot_escalation () =
  let _server, st = mk ~config:sanitize_config () in
  build_list st ~n:60 ~per_cluster:10;
  Store.reset_caches st;
  Store.begin_txn st;
  ignore (walk_list st);
  let vm = Store.vm st in
  let victim = ref None in
  Vmsim.iter_mapped
    (fun ~frame ~prot -> if !victim = None && prot = Vmsim.Prot_read then victim := Some frame)
    vm;
  (match !victim with
   | None -> Alcotest.fail "no read-protected frame after walk"
   | Some frame ->
     Vmsim.set_prot_free vm ~frame Vmsim.Prot_write;
     (match Store.validate st with
      | () -> Alcotest.fail "escalation not caught"
      | exception Qs_util.Sanitizer.Sanitizer_violation v ->
        Alcotest.(check string) "check id" "prot-escalation" v.Qs_util.Sanitizer.check);
     (* Undo the corruption so commit still goes through cleanly. *)
     Vmsim.set_prot_free vm ~frame Vmsim.Prot_read;
     Store.validate st);
  Store.commit st

(* Callback locking at the store level: with [callback_locking] on the
   store registers with the server's copy table and stops dropping
   clean pages between transactions, so a re-walk in a later
   transaction touches the server zero times — mappings, swizzled
   state and buffer frames all survive — while QSan cross-checks every
   retained page against the server's bytes (in disk format, via the
   pre-ship canonicalization hook). *)
let test_callback_locking_retains_pages () =
  let config =
    { Qs_config.default with Qs_config.callback_locking = true; Qs_config.sanitize = true }
  in
  let server, st = mk ~config () in
  build_list st ~n:60 ~per_cluster:10;
  Store.begin_txn st;
  let count, ok = walk_list st in
  Alcotest.(check int) "cold walk sees all nodes" 60 count;
  Alcotest.(check bool) "cold walk intact" true ok;
  Store.commit st;
  let reads_before = (Server.counters server).Server.client_reads in
  Store.begin_txn st;
  let count, ok = walk_list st in
  Alcotest.(check int) "retained walk sees all nodes" 60 count;
  Alcotest.(check bool) "retained walk intact" true ok;
  Store.validate st;
  Store.commit st;
  Alcotest.(check int) "re-walk fetched nothing from the server" reads_before
    (Server.counters server).Server.client_reads

(* The commit-time shadow check itself: a region list that misses a
   modified byte must be rejected, the honest diff accepted. *)
let test_regions_cover_shadow () =
  let old_bytes = Bytes.make 256 'a' and new_bytes = Bytes.make 256 'a' in
  Bytes.set new_bytes 10 'x';
  Bytes.set new_bytes 200 'y';
  let regions = Rec_buffer.diff_regions ~old_bytes ~new_bytes ~gap:16 in
  Alcotest.(check bool) "honest diff covers" true
    (Rec_buffer.regions_cover ~old_bytes ~new_bytes regions);
  Alcotest.(check bool) "dropped region detected" false
    (Rec_buffer.regions_cover ~old_bytes ~new_bytes [ (10, 1) ]);
  Alcotest.(check bool) "empty diff of equal pages" true
    (Rec_buffer.regions_cover ~old_bytes:new_bytes ~new_bytes [])

let () =
  Alcotest.run "quickstore"
    [ ( "store"
      , [ Alcotest.test_case "create and walk" `Quick test_create_and_walk
        ; Alcotest.test_case "cold walk faults" `Quick test_cold_walk_faults
        ; Alcotest.test_case "static mapping across runs" `Quick test_static_mapping_across_runs
        ; Alcotest.test_case "update durable" `Quick test_update_commit_durable
        ; Alcotest.test_case "abort restores" `Quick test_abort_restores
        ; Alcotest.test_case "crash recovery" `Quick test_crash_recovery
        ; Alcotest.test_case "continual relocation" `Quick test_relocation_continual
        ; Alcotest.test_case "one-time relocation" `Quick test_relocation_one_time
        ; Alcotest.test_case "recovery-buffer overflow" `Quick test_rec_buffer_overflow
        ; Alcotest.test_case "paging (simplified clock)" `Quick test_paging_small_pool
        ; Alcotest.test_case "paging with updates" `Quick test_paging_with_updates
        ; Alcotest.test_case "large object" `Quick test_large_object
        ; Alcotest.test_case "large scan" `Quick test_large_scan
        ; Alcotest.test_case "index roundtrip" `Quick test_index_roundtrip
        ; Alcotest.test_case "QS-B padding" `Quick test_qs_b_padding
        ; Alcotest.test_case "QS-W roundtrip" `Quick test_offsets_format_roundtrip
        ; Alcotest.test_case "QS-W updates" `Quick test_offsets_format_update
        ; Alcotest.test_case "QS-W paging" `Quick test_offsets_format_paging
        ; Alcotest.test_case "QS-W rejects relocation" `Quick test_offsets_rejects_relocation
        ; Alcotest.test_case "cost categories" `Quick test_cost_categories_charged
        ; Alcotest.test_case "diff regions" `Quick test_diff_regions ] )
    ; ( "qsan"
      , [ Alcotest.test_case "clean run validates" `Quick test_sanitize_clean_run
        ; Alcotest.test_case "clean under eviction" `Quick test_sanitize_under_eviction
        ; Alcotest.test_case "catches prot escalation" `Quick test_sanitize_catches_prot_escalation
        ; Alcotest.test_case "callback locking retains pages" `Quick
            test_callback_locking_retains_pages
        ; Alcotest.test_case "regions_cover shadow check" `Quick test_regions_cover_shadow ] )
    ; ( "properties"
      , List.map QCheck_alcotest.to_alcotest
          [ prop_diff_patch_identity
          ; prop_diff_minimal_vs_whole
          ; prop_store_transaction_model
          ; prop_walk_after_random_relocation ]
      ) ]
