(* Differential fuzz: the log-structured index against the B-tree
   oracle. Both live on the SAME server and run inside the SAME
   transactions, so every commit, abort, merge, crash and restart hits
   both symmetrically — their visible states must stay identical, op
   for op, with no model in between.

   Each seeded run drives thousands of random insert/delete/lookup/
   range operations with merges interleaved, aborts some transactions,
   and kills the server mid-transaction (and right after commits) with
   full Recovery.restart in between. *)

module Btree = Esm.Btree
module Log_index = Esm.Log_index
module Client = Esm.Client
module Server = Esm.Server
module Recovery = Esm.Recovery
module Oid = Esm.Oid
module Clock = Simclock.Clock
module Rng = Qs_util.Rng

let ikey = Btree.key_of_int ~klen:8
let lo_key = Bytes.make 8 '\000'
let hi_key = Bytes.make 8 '\xff'

(* a small oid space per key so duplicate-key and exact-pair cases
   both occur often *)
let oid_of k v = Oid.make ~page:k ~slot:v ~unique:((k * 8) + v) ()

(* Within-key order is normalized away: the B-tree's logical undo of
   an aborted delete re-inserts the pair at the END of its equal run
   (a logical record cannot remember the position), while the log
   index's physical undo restores the original bytes — so after an
   aborted delete of a duplicate the two legitimately disagree on
   within-key order, though never on the visible multiset. *)
let dump_range range_fn =
  let acc = ref [] in
  range_fn ~lo:lo_key ~hi:hi_key (fun k oid -> acc := (Bytes.to_string k, oid) :: !acc);
  List.sort compare !acc

let check_equal ~seed ~step bt li =
  let a = dump_range (fun ~lo ~hi f -> Btree.range bt ~lo ~hi f) in
  let b = dump_range (fun ~lo ~hi f -> Log_index.range li ~lo ~hi f) in
  if a <> b then
    Alcotest.fail
      (Printf.sprintf "seed %d step %d: states diverge (btree %d pairs, log index %d pairs)" seed
         step (List.length a) (List.length b));
  if Btree.cardinal bt <> Log_index.cardinal li then
    Alcotest.fail (Printf.sprintf "seed %d step %d: cardinals diverge" seed step)

(* [log_pages] sizes the log area; [churn] makes transaction
   boundaries frequent and abort-heavy so log-area growth gets undone
   mid-generation (the sync shrink path must then re-read the page
   list from the root). *)
let run_seed ?(log_pages = 1) ?(churn = false) ~ops seed =
  let rng = Rng.create (0x1d0 + seed) in
  let s = Server.create ~frames:256 ~clock:(Clock.create ()) ~cm:Simclock.Cost_model.default () in
  let connect () =
    let c = Client.create ~frames:64 s in
    Btree.install_undo_handler c;
    c
  in
  let c = ref (connect ()) in
  Client.begin_txn !c;
  let bt = ref (Btree.create ~cap:6 !c ~klen:8) in
  let li = ref (Log_index.create ~log_pages !c ~klen:8) in
  let bt_root = Btree.root !bt and li_root = Log_index.root !li in
  Client.commit !c;
  let reopen () =
    bt := Btree.open_tree !c ~root:bt_root ~klen:8;
    li := Log_index.open_index !c ~root:li_root ~klen:8
  in
  let in_txn = ref false in
  let step = ref 0 in
  while !step < ops do
    if not !in_txn then begin
      Client.begin_txn !c;
      in_txn := true
    end;
    incr step;
    let k = Rng.int rng 200 and v = Rng.int rng 3 in
    (match Rng.int rng 100 with
    | r when r < 45 ->
      Btree.insert !bt ~key:(ikey k) ~oid:(oid_of k v);
      Log_index.insert !li ~key:(ikey k) ~oid:(oid_of k v)
    | r when r < 65 ->
      let db = Btree.delete !bt ~key:(ikey k) ~oid:(oid_of k v) in
      let dl = Log_index.delete !li ~key:(ikey k) ~oid:(oid_of k v) in
      if db <> dl then Alcotest.fail (Printf.sprintf "seed %d step %d: delete verdicts diverge" seed !step)
    | r when r < 85 ->
      let a = List.sort compare (Btree.lookup_all !bt ~key:(ikey k)) in
      let b = List.sort compare (Log_index.lookup_all !li ~key:(ikey k)) in
      if a <> b then Alcotest.fail (Printf.sprintf "seed %d step %d: lookups diverge" seed !step)
    | r when r < 95 ->
      let k2 = Rng.int rng 200 in
      let lo = ikey (min k k2) and hi = ikey (max k k2) in
      let a = ref [] and b = ref [] in
      Btree.range !bt ~lo ~hi (fun key oid -> a := (Bytes.to_string key, oid) :: !a);
      Log_index.range !li ~lo ~hi (fun key oid -> b := (Bytes.to_string key, oid) :: !b);
      if List.sort compare !a <> List.sort compare !b then
        Alcotest.fail (Printf.sprintf "seed %d step %d: ranges diverge" seed !step)
    | _ -> Log_index.merge ~force:(Rng.int rng 10 = 0) !li);
    (* transaction boundary: mostly commit, sometimes abort, sometimes
       die mid-transaction *)
    if Rng.int rng (if churn then 6 else 20) = 0 then begin
      match Rng.int rng 10 with
      | r when r < if churn then 3 else 6 ->
        Client.commit !c;
        in_txn := false;
        Client.begin_txn !c;
        check_equal ~seed ~step:!step !bt !li;
        Client.commit !c
      | r when r < 8 ->
        Client.abort !c;
        in_txn := false;
        (* surviving handles must heal through mirror revalidation *)
        Client.begin_txn !c;
        check_equal ~seed ~step:!step !bt !li;
        Client.commit !c
      | _ ->
        Client.crash !c;
        Server.crash s;
        ignore (Recovery.restart s);
        in_txn := false;
        c := connect ();
        Client.begin_txn !c;
        reopen ();
        check_equal ~seed ~step:!step !bt !li;
        Client.commit !c
    end
  done;
  if !in_txn then Client.commit !c;
  Client.begin_txn !c;
  check_equal ~seed ~step:!step !bt !li;
  Client.commit !c

let test_seed seed () = run_seed ~ops:1500 seed

(* Multi-page log + abort-heavy churn: log-area growth happens often
   and is regularly undone by aborts, covering the stale-page-list
   hazard in Log_index.sync's shrink path. *)
let test_seed_multilog seed () = run_seed ~log_pages:4 ~churn:true ~ops:1500 seed

let () =
  Alcotest.run "index_fuzz"
    [ ( "differential"
      , List.map
          (fun seed ->
            Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick (test_seed seed))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ] )
    ; ( "multi-page log"
      , List.map
          (fun seed ->
            Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick (test_seed_multilog seed))
          [ 11; 12; 13; 14; 15; 16 ] ) ]
