(* Qs_fault tests: plan parsing, disarmed bit-identity, crash-point
   firing and halt semantics, typed I/O exceptions, client retry /
   degradation under transient faults, crash outcomes (loser vs winner,
   torn write, partial log force), and in-doubt 2PC resolution to both
   decisions after a prepare-point crash. *)

module F = Qs_fault
module Server = Esm.Server
module Client = Esm.Client
module Recovery = Esm.Recovery
module Disk = Esm.Disk
module Clock = Simclock.Clock
module Category = Simclock.Category

let mk ?(frames = 128) () =
  let fault = F.create () in
  let s = Server.create ~frames ~fault ~clock:(Clock.create ()) ~cm:Simclock.Cost_model.default () in
  (fault, s, Client.create ~frames:32 s)

let reconnect s = Client.create ~frames:32 s

let setup_object c data =
  Client.begin_txn c;
  let oid = Client.create_object_new_page c (Bytes.of_string data) in
  Client.commit c;
  oid

let read_back s oid =
  let c = reconnect s in
  Client.with_txn c (fun () -> Bytes.to_string (Client.read_object c oid))

(* --- plan parsing --- *)

let test_plan_of_spec () =
  let p = F.plan_of_spec ~seed:9 "disk=0.01,drop=0.05,crash=commit.mid_flush:2" in
  Alcotest.(check (float 1e-9)) "disk both ways" 0.01 p.F.disk_read_p;
  Alcotest.(check (float 1e-9)) "disk write too" 0.01 p.F.disk_write_p;
  Alcotest.(check (float 1e-9)) "drop" 0.05 p.F.net_drop_p;
  (match p.F.crash_point with
   | Some (pt, 2) -> Alcotest.(check string) "point" F.Point.commit_mid_flush pt
   | _ -> Alcotest.fail "crash point not parsed");
  Alcotest.(check int) "seed" 9 p.F.rng_seed;
  let q = F.plan_of_spec ~seed:0 "disk_read=0.5,delay=0.1,delay_us=5000" in
  Alcotest.(check (float 1e-9)) "read only" 0.5 q.F.disk_read_p;
  Alcotest.(check (float 1e-9)) "write untouched" 0.0 q.F.disk_write_p;
  Alcotest.(check (float 1e-9)) "delay us" 5000.0 q.F.net_delay_us;
  let invalid spec =
    match F.plan_of_spec ~seed:0 spec with
    | _ -> Alcotest.fail (spec ^ " should be rejected")
    | exception Invalid_argument _ -> ()
  in
  invalid "bogus=1";
  invalid "crash=not.a.point:1";
  invalid "drop=banana";
  invalid "crash=commit.mid_flush"

let test_point_registry () =
  Alcotest.(check int) "twenty-three points" 23 (List.length F.Point.all);
  List.iter (fun p -> Alcotest.(check bool) p true (F.Point.mem p)) F.Point.all;
  let t = F.create () in
  (match F.hit t "not.registered" with
   | () -> Alcotest.fail "unregistered point accepted"
   | exception Invalid_argument _ -> ())

(* --- disarmed = inert --- *)

let test_disarmed_noop () =
  let t = F.create () in
  Alcotest.(check bool) "disarmed" false (F.armed t);
  F.hit t F.Point.commit_pre_log;
  Alcotest.(check bool) "ok gate" true (F.disk_gate t ~op:F.Read ~page:3 = F.Io_ok);
  Alcotest.(check bool) "ok net" true (F.net_gate t ~op:"read" ~page:3 = F.Net_ok);
  Alcotest.(check int) "no counts" 0 (F.hit_count t F.Point.commit_pre_log);
  Alcotest.(check bool) "nothing fired" true (F.fired t = None)

let run_workload ~arm_no_faults () =
  let fault, s, c = mk () in
  if arm_no_faults then F.arm fault { F.no_faults with F.rng_seed = 5 };
  let oids = Array.init 6 (fun i -> setup_object c (Printf.sprintf "object-%04d" i)) in
  for round = 1 to 4 do
    Client.with_txn c (fun () ->
        Array.iteri
          (fun i oid ->
            if (i + round) mod 2 = 0 then
              Client.update_object c oid ~off:0
                (Bytes.of_string (Printf.sprintf "rd-%03d-%03d" round i)))
          oids)
  done;
  Server.checkpoint s;
  Clock.total_us (Server.clock s)

let test_armed_no_faults_bit_identical () =
  Alcotest.(check (float 0.0)) "same simulated time" (run_workload ~arm_no_faults:false ())
    (run_workload ~arm_no_faults:true ())

(* --- crash firing and halt --- *)

let test_crash_fires_at_exact_hit () =
  let fault, s, c = mk () in
  let oid = setup_object c "aaaa" in
  F.crash_at fault ~point:F.Point.commit_pre_log ~hit:2;
  Client.with_txn c (fun () -> Client.update_object c oid ~off:0 (Bytes.of_string "bbbb"));
  (match
     Client.with_txn c (fun () -> Client.update_object c oid ~off:0 (Bytes.of_string "cccc"))
   with
  | () -> Alcotest.fail "second commit should crash"
  | exception F.Injected_crash { point; hit } ->
    Alcotest.(check string) "point" F.Point.commit_pre_log point;
    Alcotest.(check int) "hit" 2 hit);
  Alcotest.(check bool) "fired" true (F.fired fault = Some (F.Point.commit_pre_log, 2));
  Alcotest.(check bool) "halted" true (F.halted fault);
  (* A dead server answers nothing. *)
  let c2 = reconnect s in
  (match Client.begin_txn c2 with
   | () -> Alcotest.fail "halted server accepted a transaction"
   | exception Server.Server_down -> ());
  Client.crash c;
  F.disarm fault;
  Server.crash s;
  Alcotest.(check bool) "crash clears halt" false (F.halted fault);
  ignore (Recovery.restart ~sanitize:true s);
  Alcotest.(check string) "first update committed, second lost" "bbbb" (read_back s oid)

(* --- typed exceptions on caller bugs --- *)

let test_typed_exceptions () =
  let _, s, c = mk () in
  let disk = Server.disk s in
  let buf = Bytes.create Esm.Page.page_size in
  (match Disk.read disk 9_999 buf with
   | () -> Alcotest.fail "unallocated read accepted"
   | exception Disk.Bad_page { op; page } ->
     Alcotest.(check string) "op" "read" op;
     Alcotest.(check int) "page" 9_999 page);
  (match Server.read_page s ~txn:777 ~kind:Server.Data 0 buf with
   | () -> Alcotest.fail "bad txn accepted"
   | exception Server.Bad_txn { txn; _ } -> Alcotest.(check int) "txn" 777 txn);
  ignore c

(* --- transient faults: retry until success --- *)

let test_transient_disk_reads_retried () =
  let fault, s, c = mk () in
  let oid = setup_object c "sturdy" in
  Server.reset_cache s;
  let c = reconnect s in
  F.arm fault { F.no_faults with F.disk_read_p = 0.4; rng_seed = 11 };
  Alcotest.(check string) "read survives transients" "sturdy"
    (Client.with_txn c (fun () -> Bytes.to_string (Client.read_object c oid)));
  Alcotest.(check bool) "transients were injected" true (F.transients_injected fault > 0);
  Alcotest.(check bool) "backoff charged to Retry" true
    (Clock.category_us (Server.clock s) Category.Retry > 0.0)

let test_net_drop_dup_delay () =
  let fault, s, c = mk () in
  let oid = setup_object c "netty!" in
  (* Duplicated delivery is idempotent. *)
  Server.reset_cache s;
  let c = reconnect s in
  F.arm fault { F.no_faults with F.net_dup_p = 1.0; rng_seed = 3 };
  Alcotest.(check string) "dup" "netty!"
    (Client.with_txn c (fun () -> Bytes.to_string (Client.read_object c oid)));
  (* Delay charges simulated time but delivers. *)
  F.disarm fault;
  Server.reset_cache s;
  let c = reconnect s in
  let before = Clock.category_us (Server.clock s) Category.Retry in
  F.arm fault { F.no_faults with F.net_delay_p = 1.0; net_delay_us = 1234.0; rng_seed = 3 };
  Alcotest.(check string) "delay" "netty!"
    (Client.with_txn c (fun () -> Bytes.to_string (Client.read_object c oid)));
  Alcotest.(check bool) "delay charged" true
    (Clock.category_us (Server.clock s) Category.Retry >= before +. 1234.0);
  (* Dropped messages retry (timeout charged) until delivered. *)
  F.disarm fault;
  Server.reset_cache s;
  let c = reconnect s in
  F.arm fault { F.no_faults with F.net_drop_p = 0.5; rng_seed = 7 };
  Alcotest.(check string) "drop" "netty!"
    (Client.with_txn c (fun () -> Bytes.to_string (Client.read_object c oid)));
  Alcotest.(check bool) "timeouts injected" true (F.transients_injected fault > 0)

let test_degraded_after_retry_budget () =
  let fault, s, c = mk () in
  let oid = setup_object c "gone" in
  Server.reset_cache s;
  let c = reconnect s in
  F.arm fault { F.no_faults with F.net_drop_p = 1.0; rng_seed = 1 };
  (match Client.attempt (fun () -> Client.with_txn c (fun () -> Client.read_object c oid)) with
   | Ok _ -> Alcotest.fail "100% drop cannot succeed"
   | Error d ->
     Alcotest.(check int) "all attempts used" Client.max_retries d.Client.attempts;
     Alcotest.(check bool) "typed cause" true
       (match d.Client.cause with F.Net_error _ -> true | _ -> false));
  (* The store is still intact: disarm and read again. *)
  F.disarm fault;
  Client.crash c;
  Alcotest.(check string) "data intact after degradation" "gone" (read_back s oid)

(* --- crash outcomes around the commit protocol --- *)

let crash_commit_then_restart ~point ~data =
  let fault, s, c = mk () in
  let oid = setup_object c "origin!" in
  F.crash_at fault ~point ~hit:1;
  (match Client.with_txn c (fun () -> Client.update_object c oid ~off:0 (Bytes.of_string data)) with
   | () -> Alcotest.fail "commit should crash"
   | exception F.Injected_crash _ -> ());
  Client.crash c;
  F.disarm fault;
  Server.crash s;
  ignore (Recovery.restart ~sanitize:true s);
  read_back s oid

let test_pre_flush_is_loser () =
  Alcotest.(check string) "commit not forced: old value" "origin!"
    (crash_commit_then_restart ~point:F.Point.commit_pre_flush ~data:"changed")

let test_mid_flush_is_winner () =
  Alcotest.(check string) "commit forced: redo wins" "changed"
    (crash_commit_then_restart ~point:F.Point.commit_mid_flush ~data:"changed")

let test_torn_write_repaired_by_redo () =
  Alcotest.(check string) "torn page write: header old, redo reapplies" "changed"
    (crash_commit_then_restart ~point:F.Point.disk_torn_write ~data:"changed")

let test_partial_log_force_is_atomic () =
  (* Two objects updated in one transaction; the log force is cut
     partway. Whatever prefix survives, recovery must keep the
     transaction atomic: both objects old or both new. *)
  let outcome seed =
    let fault, s, c = mk () in
    let a = setup_object c "aaaa" and b = setup_object c "bbbb" in
    F.arm fault
      { F.no_faults with F.crash_point = Some (F.Point.wal_force_partial, 1); rng_seed = seed };
    (match
       Client.with_txn c (fun () ->
           Client.update_object c a ~off:0 (Bytes.of_string "AAAA");
           Client.update_object c b ~off:0 (Bytes.of_string "BBBB"))
     with
    | () -> Alcotest.fail "force should crash"
    | exception F.Injected_crash _ -> ());
    Client.crash c;
    F.disarm fault;
    Server.crash s;
    ignore (Recovery.restart ~sanitize:true s);
    match (read_back s a, read_back s b) with
    | "aaaa", "bbbb" -> `Old
    | "AAAA", "BBBB" -> `New
    | va, vb -> Alcotest.fail (Printf.sprintf "not atomic: %s / %s" va vb)
  in
  (* Different seeds cut the force at different points; all must be
     atomic whichever way they land. *)
  ignore (List.map outcome [ 0; 1; 2; 3; 4; 5; 6; 7 ])

(* --- in-doubt 2PC: crash after the prepare record is durable --- *)

let test_prepared_in_doubt_both_ways () =
  let fault, s, c = mk () in
  let oid = setup_object c "undecided" in
  F.crash_at fault ~point:F.Point.prepare_post_log ~hit:1;
  Client.begin_txn c;
  let txn = Client.txn_id c in
  Client.update_object c oid ~off:0 (Bytes.of_string "committed");
  (match Client.prepare c with
   | () -> Alcotest.fail "prepare should crash"
   | exception F.Injected_crash { point; _ } ->
     Alcotest.(check string) "at post_log" F.Point.prepare_post_log point);
  Client.crash c;
  F.disarm fault;
  Server.crash s;
  let stats = Recovery.restart ~sanitize:true s in
  Alcotest.(check (list int)) "participant restarts in doubt" [ txn ] stats.Recovery.in_doubt;
  (* Fork the recovered volume and drive the SAME in-doubt transaction
     to both decisions. *)
  let fork = Server.fork_crashed s in
  let fstats = Recovery.restart ~sanitize:true fork in
  Alcotest.(check (list int)) "fork is in doubt too" [ txn ] fstats.Recovery.in_doubt;
  Recovery.resolve_in_doubt fork txn `Abort;
  Alcotest.(check string) "abort restores the before-image" "undecided" (read_back fork oid);
  Recovery.resolve_in_doubt s txn `Commit;
  Alcotest.(check string) "commit makes the update durable" "committed" (read_back s oid);
  (* Decisions are durable: another crash/restart leaves no doubt. *)
  Server.crash s;
  let again = Recovery.restart ~sanitize:true s in
  Alcotest.(check (list int)) "resolved" [] again.Recovery.in_doubt;
  Alcotest.(check string) "still committed" "committed" (read_back s oid)

let () =
  Alcotest.run "fault"
    [ ( "plan"
      , [ Alcotest.test_case "plan_of_spec" `Quick test_plan_of_spec
        ; Alcotest.test_case "point registry" `Quick test_point_registry ] )
    ; ( "inert"
      , [ Alcotest.test_case "disarmed hooks are no-ops" `Quick test_disarmed_noop
        ; Alcotest.test_case "armed no_faults is bit-identical" `Quick
            test_armed_no_faults_bit_identical ] )
    ; ( "crash"
      , [ Alcotest.test_case "fires at exact hit, halts server" `Quick test_crash_fires_at_exact_hit
        ; Alcotest.test_case "pre-flush crash loses the txn" `Quick test_pre_flush_is_loser
        ; Alcotest.test_case "mid-flush crash keeps the txn" `Quick test_mid_flush_is_winner
        ; Alcotest.test_case "torn write repaired by redo" `Quick test_torn_write_repaired_by_redo
        ; Alcotest.test_case "partial log force stays atomic" `Quick
            test_partial_log_force_is_atomic ] )
    ; ( "transient"
      , [ Alcotest.test_case "typed Bad_page / Bad_txn" `Quick test_typed_exceptions
        ; Alcotest.test_case "disk read transients retried" `Quick test_transient_disk_reads_retried
        ; Alcotest.test_case "net drop/dup/delay" `Quick test_net_drop_dup_delay
        ; Alcotest.test_case "degrades after retry budget" `Quick test_degraded_after_retry_budget ] )
    ; ( "two-phase"
      , [ Alcotest.test_case "prepare crash: in-doubt both ways" `Quick
            test_prepared_in_doubt_both_ways ] ) ]
