(* lib/sched: the deterministic discrete-event scheduler.

   The contract under test is determinism-first: a run is a pure
   function of (program, seed) — same seed, identical interleaving —
   with preemption only at clock-charge boundaries, explicit blocking
   via [block_on] (wake, cancel, timeout), preemption masking via
   [atomically], and cheap no-op degradation for off-task callers. *)

module Clock = Simclock.Clock
module Category = Simclock.Category

let charge clock us = Clock.charge clock Category.App_work us

(* Run [f] with a fresh scheduler and clock; [f] receives the
   scheduler and clock and spawns tasks; returns the outcomes. *)
let with_sched ?(seed = 7) f =
  let clock = Clock.create () in
  let sched = Sched.create ~seed ~clocks:[ clock ] () in
  f sched clock;
  Sched.run sched

let no_deaths outcomes =
  List.iter
    (fun (name, e) ->
      match e with
      | None -> ()
      | Some e -> Alcotest.failf "task %s died: %s" name (Printexc.to_string e))
    outcomes

(* --- interleaving ------------------------------------------------- *)

let trace_of ~seed =
  let order = ref [] in
  let outcomes =
    with_sched ~seed (fun sched clock ->
        List.iter
          (fun name ->
            Sched.spawn sched ~name (fun () ->
                (* 8 x 10us out-charges the [0,50) seeded start offsets,
                   so neither task can legally run to completion first *)
                for _ = 1 to 8 do
                  order := name :: !order;
                  charge clock 10.0
                done))
          [ "a"; "b" ])
  in
  no_deaths outcomes;
  List.rev !order

let test_preemption () =
  let t = trace_of ~seed:7 in
  Alcotest.(check int) "all steps ran" 16 (List.length t);
  let serial x y = List.init 8 (fun _ -> x) @ List.init 8 (fun _ -> y) in
  let is_serial = t = serial "a" "b" || t = serial "b" "a" in
  Alcotest.(check bool) "charge boundaries preempt" false is_serial

let test_same_seed_same_trace () =
  List.iter
    (fun seed ->
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d reproduces" seed)
        (trace_of ~seed) (trace_of ~seed))
    [ 0; 7; 42 ]

let test_seed_changes_schedule () =
  (* Not a hard guarantee for any two seeds, but these differ. *)
  Alcotest.(check bool) "seeds 7 and 8 schedule differently" true (trace_of ~seed:7 <> trace_of ~seed:8)

(* --- blocking ----------------------------------------------------- *)

let test_block_wake_waited () =
  let flag = ref false in
  let waited = ref nan in
  let outcomes =
    with_sched (fun sched clock ->
        Sched.spawn sched ~name:"waiter" (fun () ->
            waited :=
              Sched.block_on ~what:"flag" (fun () -> if !flag then Sched.Ready else Sched.Wait));
        Sched.spawn sched ~name:"setter" (fun () ->
            charge clock 200.0;
            flag := true))
  in
  no_deaths outcomes;
  (* The waiter resumed only after the setter's charges: the wait
     spans a positive stretch of virtual time. *)
  Alcotest.(check bool) "waited some virtual time" true (!waited > 0.0)

let test_block_cancel () =
  let exception Poison in
  let armed = ref false in
  let got = ref false in
  let outcomes =
    with_sched (fun sched clock ->
        Sched.spawn sched ~name:"waiter" (fun () ->
            try
              ignore
                (Sched.block_on ~what:"poison" (fun () ->
                     if !armed then Sched.Cancel Poison else Sched.Wait))
            with Poison -> got := true);
        Sched.spawn sched ~name:"armer" (fun () ->
            charge clock 50.0;
            armed := true))
  in
  no_deaths outcomes;
  Alcotest.(check bool) "cancel exception delivered in waiter" true !got

let test_block_timeout () =
  let caught = ref None in
  let outcomes =
    with_sched (fun sched _clock ->
        Sched.spawn sched ~name:"waiter" (fun () ->
            try ignore (Sched.block_on ~timeout_us:300.0 ~what:"never" (fun () -> Sched.Wait))
            with Sched.Timeout { waited_us; _ } -> caught := Some waited_us))
  in
  no_deaths outcomes;
  match !caught with
  | None -> Alcotest.fail "timeout did not fire"
  | Some w -> Alcotest.(check (float 1e-9)) "waited the full timeout" 300.0 w

let test_stuck () =
  Alcotest.check_raises "wedged schedule raises Stuck"
    (Sched.Stuck { blocked = [ "waiter: never" ] })
    (fun () ->
      ignore
        (with_sched (fun sched _clock ->
             Sched.spawn sched ~name:"waiter" (fun () ->
                 ignore (Sched.block_on ~what:"never" (fun () -> Sched.Wait))))))

(* --- masking ------------------------------------------------------ *)

let test_atomically_masks () =
  let order = ref [] in
  let push x = order := x :: !order in
  let outcomes =
    with_sched (fun sched clock ->
        Sched.spawn sched ~name:"a" (fun () ->
            Sched.atomically (fun () ->
                for _ = 1 to 5 do
                  push "a";
                  charge clock 10.0
                done));
        Sched.spawn sched ~name:"b" (fun () ->
            for _ = 1 to 5 do
              push "b";
              charge clock 10.0
            done))
  in
  no_deaths outcomes;
  (* Whatever the interleaving around it, the masked region's five
     steps are contiguous in the trace. *)
  let t = List.rev !order in
  let rec runs = function
    | [] -> []
    | x :: _ as l ->
      let rec take acc = function
        | y :: tl when y = x -> take (acc + 1) tl
        | tl -> ((x, acc), tl)
      in
      let (x, n), tl = take 0 l in
      (x, n) :: runs tl
  in
  let a_runs = List.filter (fun (x, _) -> x = "a") (runs t) in
  Alcotest.(check (list (pair string int))) "masked charges do not preempt" [ ("a", 5) ] a_runs

(* --- off-task degradation ----------------------------------------- *)

let test_off_task_noops () =
  Alcotest.(check bool) "not active outside a run" false (Sched.active ());
  Alcotest.(check (option string)) "no current task" None (Sched.current ());
  Sched.yield ();
  Alcotest.(check int) "atomically is transparent" 3 (Sched.atomically (fun () -> 3));
  Alcotest.(check (float 0.0)) "ready block_on returns immediately" 0.0
    (Sched.block_on ~what:"ready" (fun () -> Sched.Ready));
  Alcotest.check_raises "unsatisfiable off-task wait is an error"
    (Invalid_argument "Sched.block_on: no scheduler active for wait on w") (fun () ->
      ignore (Sched.block_on ~what:"w" (fun () -> Sched.Wait)))

(* --- end-to-end determinism: the multi-client benchmark ----------- *)

let test_mc_deterministic () =
  let run () = Harness.Mc.run ~clients:3 ~txns_per_client:5 ~seed:11 () in
  let a = run () and b = run () in
  Alcotest.(check string) "same seed, same trace digest" a.Harness.Mc.trace_digest
    b.Harness.Mc.trace_digest;
  Alcotest.(check bool) "identical stats" true (a = b);
  let c = Harness.Mc.run ~clients:3 ~txns_per_client:5 ~seed:12 () in
  Alcotest.(check bool) "different seed, different interleaving" true
    (c.Harness.Mc.trace_digest <> a.Harness.Mc.trace_digest)

let () =
  Alcotest.run "sched"
    [ ( "interleaving"
      , [ Alcotest.test_case "charge boundaries preempt" `Quick test_preemption
        ; Alcotest.test_case "same seed same trace" `Quick test_same_seed_same_trace
        ; Alcotest.test_case "seed changes schedule" `Quick test_seed_changes_schedule ] )
    ; ( "blocking"
      , [ Alcotest.test_case "block, wake, waited" `Quick test_block_wake_waited
        ; Alcotest.test_case "cancel" `Quick test_block_cancel
        ; Alcotest.test_case "timeout" `Quick test_block_timeout
        ; Alcotest.test_case "stuck" `Quick test_stuck ] )
    ; ("masking", [ Alcotest.test_case "atomically masks preemption" `Quick test_atomically_masks ])
    ; ("off-task", [ Alcotest.test_case "primitives degrade to no-ops" `Quick test_off_task_noops ])
    ; ( "end-to-end"
      , [ Alcotest.test_case "multi-client bench is deterministic" `Quick test_mc_deterministic ] )
    ]
