(* Crash/restart recovery tests: committed state survives, losers are
   undone, logical index records replay idempotently, and a randomized
   crash-point property. *)

module Server = Esm.Server
module Client = Esm.Client
module Recovery = Esm.Recovery
module Btree = Esm.Btree
module Oid = Esm.Oid
module Clock = Simclock.Clock

let mk () =
  let s = Server.create ~frames:128 ~clock:(Clock.create ()) ~cm:Simclock.Cost_model.default () in
  (s, Client.create ~frames:32 s)

let reconnect s = Client.create ~frames:32 s

let test_committed_survives_crash () =
  let s, c = mk () in
  Client.begin_txn c;
  let oid = Client.create_object_new_page c (Bytes.of_string "durable!") in
  Client.commit c;
  Client.crash c;
  Server.crash s;
  let stats = Recovery.restart s in
  Alcotest.(check int) "no losers" 0 stats.Recovery.losers_undone;
  let c = reconnect s in
  Client.begin_txn c;
  Alcotest.(check bytes) "object back" (Bytes.of_string "durable!") (Client.read_object c oid);
  Client.commit c

let test_uncommitted_lost_after_crash () =
  let s, c = mk () in
  Client.begin_txn c;
  let oid = Client.create_object_new_page c (Bytes.make 8 'a') in
  Client.commit c;
  (* Start an update but crash before commit; the dirty page never even
     reaches the server. *)
  Client.begin_txn c;
  Client.update_object c oid ~off:0 (Bytes.of_string "XXXX");
  Client.crash c;
  Server.crash s;
  ignore (Recovery.restart s);
  let c = reconnect s in
  Client.begin_txn c;
  Alcotest.(check char) "old value" 'a' (Bytes.get (Client.read_object c oid) 0);
  Client.commit c

let test_stolen_uncommitted_page_undone () =
  (* Force the dirty page to the server mid-transaction (tiny client
     pool), then crash: the update was logged and forced? No — only
     appended. Force the log by beginning commit... Instead: evict the
     page (ships it), force the log via an unrelated committing txn,
     then crash. Undo must restore the before-image. *)
  let s, c = mk () in
  Client.begin_txn c;
  let oid = Client.create_object_new_page c (Bytes.make 8 'a') in
  Client.commit c;
  Client.begin_txn c;
  Client.update_object c oid ~off:0 (Bytes.of_string "XXXX");
  (* Ship the dirty page to the server (steal). *)
  (match Client.frame_of_page c oid.Oid.page with
   | Some frame -> Client.evict_page c ~frame
   | None -> Alcotest.fail "page not resident");
  (* An unrelated transaction commits, forcing the log (and thus the
     loser's update record). *)
  let c2 = reconnect s in
  Client.begin_txn c2;
  ignore (Client.create_object_new_page c2 (Bytes.make 8 'z'));
  Client.commit c2;
  Client.crash c;
  Server.crash s;
  let stats = Recovery.restart s in
  Alcotest.(check int) "one loser" 1 stats.Recovery.losers_undone;
  Alcotest.(check bool) "undo applied" true (stats.Recovery.loser_updates_undone > 0);
  let c = reconnect s in
  Client.begin_txn c;
  Alcotest.(check char) "before-image restored" 'a' (Bytes.get (Client.read_object c oid) 0);
  Client.commit c

let test_runtime_abort_then_crash () =
  (* A transaction aborted at runtime (with CLRs in the log) must stay
     aborted after restart. *)
  let s, c = mk () in
  Client.begin_txn c;
  let oid = Client.create_object_new_page c (Bytes.make 8 'a') in
  Client.commit c;
  Client.begin_txn c;
  Client.update_object c oid ~off:0 (Bytes.of_string "XXXX");
  Client.abort c;
  Server.crash s;
  ignore (Recovery.restart s);
  let c = reconnect s in
  Client.begin_txn c;
  Alcotest.(check char) "aborted stays aborted" 'a' (Bytes.get (Client.read_object c oid) 0);
  Client.commit c

let test_restart_idempotent () =
  let s, c = mk () in
  Client.begin_txn c;
  let oid = Client.create_object_new_page c (Bytes.of_string "twice") in
  Client.commit c;
  Server.crash s;
  ignore (Recovery.restart s);
  Server.crash s;
  ignore (Recovery.restart s);
  let c = reconnect s in
  Client.begin_txn c;
  Alcotest.(check bytes) "still there" (Bytes.of_string "twice") (Client.read_object c oid);
  Client.commit c

let ikey = Btree.key_of_int ~klen:8
let oid_of_int i = Oid.make ~page:i ~slot:(i mod 100) ~unique:i ()

let test_index_recovery_committed () =
  let s, c = mk () in
  Client.begin_txn c;
  let t = Btree.create ~cap:4 c ~klen:8 in
  let root = Btree.root t in
  for i = 1 to 100 do
    Btree.insert t ~key:(ikey i) ~oid:(oid_of_int i)
  done;
  Client.commit c;
  Client.crash c;
  Server.crash s;
  let stats = Recovery.restart s in
  Alcotest.(check bool) "logical records replayed" true (stats.Recovery.logical_replayed >= 100);
  let c = reconnect s in
  Client.begin_txn c;
  let t = Btree.open_tree c ~root ~klen:8 in
  Alcotest.(check int) "all entries" 100 (Btree.cardinal t);
  Alcotest.(check bool) "invariants" true (Btree.invariants_hold t);
  Client.commit c

let test_index_recovery_loser_insert_removed () =
  let s, c = mk () in
  Client.begin_txn c;
  let t = Btree.create ~cap:4 c ~klen:8 in
  let root = Btree.root t in
  Btree.insert t ~key:(ikey 1) ~oid:(oid_of_int 1);
  Client.commit c;
  (* Loser inserts; log forced by another txn's commit; crash. *)
  Client.begin_txn c;
  let t = Btree.open_tree c ~root ~klen:8 in
  Btree.insert t ~key:(ikey 2) ~oid:(oid_of_int 2);
  let c2 = reconnect s in
  Client.begin_txn c2;
  ignore (Client.create_object_new_page c2 (Bytes.make 8 'z'));
  Client.commit c2;
  Client.crash c;
  Server.crash s;
  ignore (Recovery.restart s);
  let c = reconnect s in
  Client.begin_txn c;
  let t = Btree.open_tree c ~root ~klen:8 in
  Alcotest.(check bool) "committed entry present" true (Btree.lookup t ~key:(ikey 1) <> None);
  Alcotest.(check bool) "loser entry absent" true (Btree.lookup t ~key:(ikey 2) = None);
  Client.commit c

let test_crash_mid_commit_flush () =
  (* The commit flush is cut after one page ship: the commit record was
     never forced, so restart must roll the whole transaction back,
     including the page that did reach the server. *)
  let s, c = mk () in
  Client.begin_txn c;
  let oids = List.init 6 (fun i -> Client.create_object_new_page c (Bytes.make 64 (Char.chr (97 + i)))) in
  Client.commit c;
  Client.begin_txn c;
  List.iter (fun oid -> Client.update_object c oid ~off:0 (Bytes.of_string "MODIFIED")) oids;
  Server.inject_crash_after_writes s 1;
  (match Client.commit c with
   | () -> Alcotest.fail "expected injected crash"
   | exception Server.Injected_crash -> ());
  Client.crash c;
  Server.crash s;
  ignore (Recovery.restart s);
  let c = reconnect s in
  Client.begin_txn c;
  List.iteri
    (fun i oid ->
      Alcotest.(check char)
        (Printf.sprintf "object %d rolled back" i)
        (Char.chr (97 + i))
        (Bytes.get (Client.read_object c oid) 0))
    oids;
  Client.commit c

(* Property: crash after a random number of commit-flush writes; the
   interrupted transaction must be invisible afterwards, whatever the
   cut point. *)
let prop_atomic_commit_any_cut =
  QCheck.Test.make ~name:"commit is atomic under any flush cut point" ~count:20
    QCheck.(int_bound 8)
    (fun cut ->
      let s, c = mk () in
      Client.begin_txn c;
      let oids =
        List.init 8 (fun _ -> Client.create_object_new_page c (Bytes.make 32 'o'))
      in
      Client.commit c;
      Client.begin_txn c;
      List.iter (fun oid -> Client.update_object c oid ~off:0 (Bytes.of_string "X")) oids;
      Server.inject_crash_after_writes s cut;
      let crashed =
        match Client.commit c with () -> false | exception Server.Injected_crash -> true
      in
      if crashed then begin
        Client.crash c;
        Server.crash s;
        ignore (Recovery.restart s)
      end;
      let c2 = reconnect s in
      Client.begin_txn c2;
      let all_old = List.for_all (fun oid -> Bytes.get (Client.read_object c2 oid) 0 = 'o') oids in
      let all_new = List.for_all (fun oid -> Bytes.get (Client.read_object c2 oid) 0 = 'X') oids in
      Client.commit c2;
      if crashed then all_old else all_new)

(* Property: N committed transactions each writing a distinct object,
   then a crash; every committed object must be intact afterwards. *)
let prop_committed_always_durable =
  QCheck.Test.make ~name:"every committed txn survives a crash" ~count:25
    QCheck.(pair (int_range 1 12) (int_range 1 400))
    (fun (ntxns, size) ->
      let s, c = mk () in
      let written =
        List.init ntxns (fun i ->
            Client.begin_txn c;
            let data = Bytes.make size (Char.chr (65 + (i mod 26))) in
            let oid = Client.create_object_new_page c data in
            Client.update_object c oid ~off:0 (Bytes.make 1 '!');
            Bytes.set data 0 '!';
            Client.commit c;
            (oid, data))
      in
      Client.crash c;
      Server.crash s;
      ignore (Recovery.restart s);
      let c = reconnect s in
      Client.begin_txn c;
      let ok = List.for_all (fun (oid, data) -> Bytes.equal (Client.read_object c oid) data) written in
      Client.commit c;
      ok)

(* Property: a random mix of committed and crashed-in-flight txns; the
   committed writes survive, the in-flight ones vanish. *)
let prop_losers_never_leak =
  QCheck.Test.make ~name:"loser updates never survive restart" ~count:25
    QCheck.(list bool)
    (fun commits ->
      let s, c = mk () in
      Client.begin_txn c;
      let oid = Client.create_object_new_page c (Bytes.make 64 '0') in
      Client.commit c;
      (* Each step updates byte i; committed steps keep their byte,
         the final uncommitted step must be rolled back. *)
      List.iteri
        (fun i commit ->
          if i < 63 then begin
            Client.begin_txn c;
            Client.update_object c oid ~off:i (Bytes.make 1 'C');
            if commit then Client.commit c else Client.abort c
          end)
        commits;
      Server.crash s;
      ignore (Recovery.restart s);
      let c = reconnect s in
      Client.begin_txn c;
      let b = Client.read_object c oid in
      let ok = ref true in
      List.iteri
        (fun i commit ->
          if i < 63 then begin
            let expected = if commit then 'C' else '0' in
            if Bytes.get b i <> expected then ok := false
          end)
        commits;
      Client.commit c;
      !ok)

(* --- QSan: sanitized restart --- *)

(* The standard crash scenario must be violation-free under
   [~sanitize:true]. *)
let test_sanitized_restart_clean () =
  let s, c = mk () in
  Client.begin_txn c;
  let oid = Client.create_object_new_page c (Bytes.of_string "durable!") in
  Client.commit c;
  Client.begin_txn c;
  Client.update_object c oid ~off:0 (Bytes.of_string "UPDATED!");
  Client.commit c;
  Client.crash c;
  Server.crash s;
  let stats = Recovery.restart ~sanitize:true s in
  Alcotest.(check int) "no losers" 0 stats.Recovery.losers_undone;
  let c = reconnect s in
  Client.begin_txn c;
  Alcotest.(check bytes) "object back" (Bytes.of_string "UPDATED!") (Client.read_object c oid);
  Client.commit c

(* Injected corruption: stamp a disk page with an LSN far beyond the
   end of the log (a write that never obeyed write-ahead ordering).
   Plain restart silently skips redo for it; sanitized restart must
   fail fast. *)
let test_sanitized_restart_catches_stale_lsn () =
  let s, c = mk () in
  Client.begin_txn c;
  let oid = Client.create_object_new_page c (Bytes.of_string "durable!") in
  Client.commit c;
  Client.crash c;
  Server.crash s;
  let disk = Server.disk s in
  let buf = Bytes.create Esm.Page.page_size in
  Esm.Disk.read disk oid.Oid.page buf;
  Qs_util.Codec.set_i64 buf 8 0x7FFF_0000_0000_0000L;
  Esm.Disk.write disk oid.Oid.page buf;
  (match Recovery.restart ~sanitize:true s with
   | _ -> Alcotest.fail "future page LSN not caught"
   | exception Qs_util.Sanitizer.Sanitizer_violation v ->
     Alcotest.(check string) "check id" "lsn-monotone" v.Qs_util.Sanitizer.check)

let () =
  Alcotest.run "recovery"
    [ ( "recovery"
      , [ Alcotest.test_case "committed survives" `Quick test_committed_survives_crash
        ; Alcotest.test_case "uncommitted lost" `Quick test_uncommitted_lost_after_crash
        ; Alcotest.test_case "stolen page undone" `Quick test_stolen_uncommitted_page_undone
        ; Alcotest.test_case "runtime abort stays aborted" `Quick test_runtime_abort_then_crash
        ; Alcotest.test_case "restart idempotent" `Quick test_restart_idempotent
        ; Alcotest.test_case "index committed" `Quick test_index_recovery_committed
        ; Alcotest.test_case "index loser removed" `Quick test_index_recovery_loser_insert_removed
        ; Alcotest.test_case "crash mid commit flush" `Quick test_crash_mid_commit_flush ] )
    ; ( "qsan"
      , [ Alcotest.test_case "sanitized restart clean" `Quick test_sanitized_restart_clean
        ; Alcotest.test_case "catches future page LSN" `Quick
            test_sanitized_restart_catches_stale_lsn ] )
    ; ( "properties"
      , List.map QCheck_alcotest.to_alcotest
          [ prop_atomic_commit_any_cut; prop_committed_always_durable; prop_losers_never_leak ]
      ) ]
