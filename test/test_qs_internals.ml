(* Direct unit tests for QuickStore's internal structures: meta /
   mapping / bitmap object codecs, the descriptor table with
   large-object splitting (Figure 3), and the simplified clock. *)

module Meta = Quickstore.Qs_meta
module MT = Quickstore.Mapping_table
module Qs_clock = Quickstore.Qs_clock
module Oid = Esm.Oid
module Pool = Esm.Buf_pool
module Clock = Simclock.Clock

let oid p = Oid.make ~page:p ~slot:3 ~unique:p ()

(* --- codecs --- *)

let test_meta_codec () =
  let m = oid 10 and b = oid 11 in
  let mapping, bitmap = Meta.decode_meta (Meta.encode_meta ~mapping:m ~bitmap:b) in
  Alcotest.(check bool) "mapping oid" true (Oid.equal m mapping);
  Alcotest.(check bool) "bitmap oid" true (Oid.equal b bitmap)

let entries_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         match (x, y) with
         | Meta.E_small { vframe = v1; page = p1 }, Meta.E_small { vframe = v2; page = p2 } ->
           v1 = v2 && p1 = p2
         | ( Meta.E_large { vframe = v1; npages = n1; oid = o1 }
           , Meta.E_large { vframe = v2; npages = n2; oid = o2 } ) ->
           v1 = v2 && n1 = n2 && Oid.equal o1 o2
         | Meta.E_small _, Meta.E_large _ | Meta.E_large _, Meta.E_small _ -> false)
       a b

let test_mapping_codec () =
  let entries =
    [ Meta.E_small { vframe = 100; page = 42 }
    ; Meta.E_large { vframe = 200; npages = 13; oid = oid 7 }
    ; Meta.E_small { vframe = 300; page = 43 } ]
  in
  let b = Meta.encode_mapping ~next:(oid 99) ~capacity:10 entries in
  Alcotest.(check bool) "entries" true (entries_equal entries (Meta.decode_mapping b));
  Alcotest.(check int) "capacity" 10 (Meta.mapping_capacity b);
  Alcotest.(check bool) "next" true (Oid.equal (oid 99) (Meta.mapping_next b));
  Alcotest.(check int) "size" (Meta.mapping_object_size ~capacity:10) (Bytes.length b)

let test_mapping_capacity_guard () =
  Alcotest.check_raises "capacity < count"
    (Invalid_argument "Qs_meta.encode_mapping: capacity below count") (fun () ->
      ignore (Meta.encode_mapping ~capacity:0 [ Meta.E_small { vframe = 1; page = 1 } ]));
  Alcotest.(check bool) "segment bound positive" true (Meta.max_segment_capacity > 200)

let test_bitmap_codec () =
  let bs = Meta.empty_bitmap () in
  Qs_util.Bitset.set bs 0;
  Qs_util.Bitset.set bs 2047;
  let bs' = Meta.decode_bitmap (Meta.encode_bitmap bs) in
  Alcotest.(check bool) "roundtrip" true (Qs_util.Bitset.equal bs bs');
  Alcotest.(check int) "object size" 256 Meta.bitmap_object_size

(* --- mapping table --- *)

let mk_desc ?(vframe = 100) ?(nframes = 1) phys =
  { MT.vframe
  ; nframes
  ; phys
  ; buf_frame = None
  ; read_this_txn = false
  ; write_enabled = false
  ; snapshot_taken = false
  ; cr_swizzled = false
  ; mem_format = false }

let test_table_small_pages () =
  let t = MT.create () in
  MT.add t (mk_desc ~vframe:10 (MT.Small_page 5));
  MT.add t (mk_desc ~vframe:11 (MT.Small_page 6));
  Alcotest.(check int) "cardinal" 2 (MT.cardinal t);
  (match MT.find_by_page t 5 with
   | Some d -> Alcotest.(check int) "reverse map" 10 d.MT.vframe
   | None -> Alcotest.fail "missing");
  (match MT.find_by_vframe t 11 with
   | Some { MT.phys = MT.Small_page 6; _ } -> ()
   | Some _ | None -> Alcotest.fail "by vframe");
  Alcotest.(check bool) "range taken" false (MT.range_free t ~vframe:10 ~n:2);
  Alcotest.(check bool) "range free" true (MT.range_free t ~vframe:12 ~n:100);
  Alcotest.(check bool) "invariants" true (MT.invariants_hold t)

let test_large_split_figure3 () =
  (* The paper's Figure 3: a 100-page object mapped to frames 1..100;
     accessing page index 7 (the paper's "eighth page") splits the
     descriptor into [0..6], [7], [8..99]. *)
  let t = MT.create () in
  let o = oid 50 in
  let d = mk_desc ~vframe:1 ~nframes:100 (MT.Large_range { oid = o; first = 0; npages = 100 }) in
  MT.add t d;
  let mid = MT.split_large t d ~idx:7 in
  Alcotest.(check int) "three descriptors" 3 (MT.cardinal t);
  Alcotest.(check int) "accessed page frame" 8 mid.MT.vframe;
  Alcotest.(check int) "single frame" 1 mid.MT.nframes;
  (match MT.find_by_vframe t 1 with
   | Some { MT.phys = MT.Large_range { first = 0; npages = 7; _ }; _ } -> ()
   | Some _ | None -> Alcotest.fail "left range");
  (match MT.find_by_vframe t 9 with
   | Some { MT.phys = MT.Large_range { first = 8; npages = 92; _ }; _ } -> ()
   | Some _ | None -> Alcotest.fail "right range");
  (* Subsequent split of a sub-range (the paper: "split in turn"). *)
  (match MT.find_by_large t o ~idx:50 with
   | Some d2 ->
     let mid2 = MT.split_large t d2 ~idx:50 in
     Alcotest.(check int) "five descriptors" 5 (MT.cardinal t);
     Alcotest.(check int) "frame of page 50" 51 mid2.MT.vframe
   | None -> Alcotest.fail "find_by_large");
  (* The head entry in the hash still resolves. *)
  (match MT.find_large_head t o with
   | Some { MT.phys = MT.Large_range { first = 0; _ }; _ } -> ()
   | Some _ | None -> Alcotest.fail "head after splits");
  Alcotest.(check bool) "invariants" true (MT.invariants_hold t)

let test_split_edge_pages () =
  let t = MT.create () in
  let o = oid 60 in
  let d = mk_desc ~vframe:10 ~nframes:5 (MT.Large_range { oid = o; first = 0; npages = 5 }) in
  MT.add t d;
  (* Split at index 0: no left remainder. *)
  let m0 = MT.split_large t d ~idx:0 in
  Alcotest.(check int) "two descs" 2 (MT.cardinal t);
  Alcotest.(check int) "frame" 10 m0.MT.vframe;
  (* Split the tail range at its last page. *)
  (match MT.find_by_large t o ~idx:4 with
   | Some d2 ->
     let m4 = MT.split_large t d2 ~idx:4 in
     Alcotest.(check int) "frame of last" 14 m4.MT.vframe;
     Alcotest.(check int) "three descs" 3 (MT.cardinal t)
   | None -> Alcotest.fail "tail");
  Alcotest.(check bool) "invariants" true (MT.invariants_hold t)

let test_find_gap () =
  let t = MT.create () in
  MT.add t (mk_desc ~vframe:16 ~nframes:4 (MT.Small_page 1));
  MT.add t (mk_desc ~vframe:25 ~nframes:1 (MT.Small_page 2));
  (match MT.find_gap t ~width:5 () with
   | Some g -> Alcotest.(check int) "lowest gap from zero" 0 g
   | None -> Alcotest.fail "no gap");
  (match MT.find_gap t ~start:16 ~width:5 () with
   | Some g -> Alcotest.(check int) "gap above reservation" 20 g
   | None -> Alcotest.fail "no gap above 16");
  (match MT.find_gap t ~start:16 ~width:1 () with
   | Some g -> Alcotest.(check int) "narrow gap" 20 g
   | None -> Alcotest.fail "no narrow gap")

(* --- adversarial: the table must reject inconsistent states --- *)

let test_overlapping_add_raises () =
  let t = MT.create () in
  MT.add t (mk_desc ~vframe:10 ~nframes:4 (MT.Small_page 1));
  Alcotest.check_raises "overlap rejected"
    (Invalid_argument "Interval_avl.add: overlapping interval") (fun () ->
      MT.add t (mk_desc ~vframe:13 ~nframes:2 (MT.Small_page 2)));
  (* Abutting on either side is fine; containment is not. *)
  MT.add t (mk_desc ~vframe:14 ~nframes:1 (MT.Small_page 3));
  MT.add t (mk_desc ~vframe:9 ~nframes:1 (MT.Small_page 4));
  Alcotest.check_raises "contained range rejected"
    (Invalid_argument "Interval_avl.add: overlapping interval") (fun () ->
      MT.add t (mk_desc ~vframe:11 ~nframes:1 (MT.Small_page 5)));
  Alcotest.(check int) "failed adds left no trace" 3 (MT.cardinal t);
  Alcotest.(check bool) "invariants" true (MT.invariants_hold t);
  MT.validate t

let test_split_rejects_outside_idx () =
  let t = MT.create () in
  let o = oid 61 in
  let d = mk_desc ~vframe:20 ~nframes:5 (MT.Large_range { oid = o; first = 2; npages = 5 }) in
  MT.add t d;
  Alcotest.check_raises "below range" (Invalid_argument "Mapping_table.split_large: idx outside")
    (fun () -> ignore (MT.split_large t d ~idx:1));
  Alcotest.check_raises "above range" (Invalid_argument "Mapping_table.split_large: idx outside")
    (fun () -> ignore (MT.split_large t d ~idx:7));
  let s = mk_desc ~vframe:40 (MT.Small_page 9) in
  MT.add t s;
  Alcotest.check_raises "small page" (Invalid_argument "Mapping_table.split_large: small page")
    (fun () -> ignore (MT.split_large t s ~idx:0));
  Alcotest.(check int) "nothing split" 2 (MT.cardinal t);
  MT.validate t

let test_find_by_large_out_of_range () =
  let t = MT.create () in
  let o = oid 62 in
  MT.add t (mk_desc ~vframe:30 ~nframes:4 (MT.Large_range { oid = o; first = 0; npages = 4 }));
  (* Split so the object is covered by several descriptors, then probe
     outside the object. *)
  (match MT.find_by_large t o ~idx:2 with
   | Some d -> ignore (MT.split_large t d ~idx:2)
   | None -> Alcotest.fail "idx 2 before split");
  Alcotest.(check bool) "past the end" true (Option.is_none (MT.find_by_large t o ~idx:4));
  Alcotest.(check bool) "other oid" true (Option.is_none (MT.find_by_large t (oid 63) ~idx:0));
  Alcotest.(check bool) "every in-range idx covered" true
    (List.for_all (fun i -> Option.is_some (MT.find_by_large t o ~idx:i)) [ 0; 1; 2; 3 ]);
  MT.validate t

let test_validate_catches_drift () =
  let t = MT.create () in
  let d = mk_desc ~vframe:50 ~nframes:2 (MT.Large_range { oid = oid 64; first = 0; npages = 2 }) in
  MT.add t d;
  MT.validate t;
  (* Corrupt the descriptor behind the tree's back: QSan must name the
     drifted range rather than silently misroute later faults. *)
  d.MT.vframe <- 51;
  (match MT.validate t with
   | () -> Alcotest.fail "drift not caught"
   | exception Qs_util.Sanitizer.Sanitizer_violation v ->
     Alcotest.(check string) "check id" "mapping-drift" v.Qs_util.Sanitizer.check);
  d.MT.vframe <- 50;
  MT.validate t

(* --- simplified clock --- *)

let test_simplified_clock () =
  let clock = Clock.create () in
  let vm = Vmsim.create ~clock ~cm:Simclock.Cost_model.default () in
  let pool = Pool.create ~frames:4 in
  (* Install 4 pages; map frames 100..103 onto them with access
     enabled except vframe 102. *)
  for i = 0 to 3 do
    let f = Option.get (Pool.free_frame pool) in
    Pool.install pool ~frame:f ~page_id:(200 + i);
    Vmsim.map vm ~frame:(100 + i) ~buf:(Pool.frame_bytes pool f);
    if i <> 2 then Vmsim.set_prot_free vm ~frame:(100 + i) Vmsim.Prot_read
  done;
  let vframe_of_frame f = Option.map (fun pid -> pid - 200 + 100) (Pool.page_of_frame pool f) in
  let victim = Qs_clock.pick_victim ~pool ~vm ~vframe_of_frame in
  Alcotest.(check int) "first no-access frame wins" 2 victim;
  (* Enable it; now everything is accessible: the sweep must reprotect
     the whole space in one protect_all call, charged as the call plus
     one event per mapped frame (4 frames -> 5 Mmap_call events). *)
  Vmsim.set_prot_free vm ~frame:102 Vmsim.Prot_read;
  Clock.reset clock;
  let v2 = Qs_clock.pick_victim ~pool ~vm ~vframe_of_frame in
  Alcotest.(check int) "one global reprotect, charged per frame" 5
    (Clock.category_events clock Simclock.Category.Mmap_call);
  Alcotest.(check bool) "a frame was chosen" true (v2 >= 0 && v2 < 4);
  Vmsim.iter_mapped
    (fun ~frame:_ ~prot -> Alcotest.(check bool) "all revoked" true (prot = Vmsim.Prot_none))
    vm

let test_clock_skips_pinned () =
  let clock = Clock.create () in
  let vm = Vmsim.create ~clock ~cm:Simclock.Cost_model.default () in
  let pool = Pool.create ~frames:3 in
  for i = 0 to 2 do
    let f = Option.get (Pool.free_frame pool) in
    Pool.install pool ~frame:f ~page_id:(300 + i)
  done;
  Pool.pin pool 0;
  Pool.set_hand pool 0;
  let victim = Qs_clock.pick_victim ~pool ~vm ~vframe_of_frame:(fun _ -> None) in
  Alcotest.(check bool) "pinned frame skipped" true (victim <> 0)

(* Property: random split sequences keep table invariants and full
   coverage of the object's frames. *)
let prop_splits_cover =
  QCheck.Test.make ~name:"large splits keep coverage and invariants" ~count:100
    QCheck.(pair (int_range 2 60) (list (int_bound 59)))
    (fun (npages, accesses) ->
      let t = MT.create () in
      let o = oid 77 in
      MT.add t (mk_desc ~vframe:1000 ~nframes:npages (MT.Large_range { oid = o; first = 0; npages }));
      List.iter
        (fun idx ->
          let idx = idx mod npages in
          match MT.find_by_large t o ~idx with
          | Some d -> ignore (MT.split_large t d ~idx)
          | None -> ())
        accesses;
      MT.invariants_hold t
      && List.for_all
           (fun idx ->
             match MT.find_by_large t o ~idx with
             | Some d -> (
               match d.MT.phys with
               | MT.Large_range { first; npages = n; _ } ->
                 d.MT.vframe = 1000 + first && idx >= first && idx < first + n
               | MT.Small_page _ -> false)
             | None -> false)
           (List.init npages (fun i -> i)))

let () =
  Alcotest.run "qs-internals"
    [ ( "codecs"
      , [ Alcotest.test_case "meta object" `Quick test_meta_codec
        ; Alcotest.test_case "mapping object" `Quick test_mapping_codec
        ; Alcotest.test_case "mapping capacity guard" `Quick test_mapping_capacity_guard
        ; Alcotest.test_case "bitmap object" `Quick test_bitmap_codec ] )
    ; ( "mapping-table"
      , [ Alcotest.test_case "small pages" `Quick test_table_small_pages
        ; Alcotest.test_case "figure 3 split" `Quick test_large_split_figure3
        ; Alcotest.test_case "edge splits" `Quick test_split_edge_pages
        ; Alcotest.test_case "find gap" `Quick test_find_gap ] )
    ; ( "mapping-table-adversarial"
      , [ Alcotest.test_case "overlapping add raises" `Quick test_overlapping_add_raises
        ; Alcotest.test_case "split outside idx raises" `Quick test_split_rejects_outside_idx
        ; Alcotest.test_case "find_by_large out of range" `Quick test_find_by_large_out_of_range
        ; Alcotest.test_case "validate catches drift" `Quick test_validate_catches_drift ] )
    ; ( "simplified-clock"
      , [ Alcotest.test_case "protection-driven sweep" `Quick test_simplified_clock
        ; Alcotest.test_case "skips pinned" `Quick test_clock_skips_pinned ] )
    ; ("properties", [ QCheck_alcotest.to_alcotest prop_splits_cover ]) ]
