(* lib/esm/lock_mgr: strict 2PL lock table, no-wait and blocking paths.

   The no-wait tests exercise the compatibility matrix and the typed
   [Conflict] payload directly, with no scheduler. The blocking tests
   run under lib/sched and cover the waits-for machinery: grant after
   release, cycle detection with youngest-victim wound (including the
   wound of an already-parked non-requester), inherited birth stamps
   flipping the victim, and the timeout backstop. The final group
   scripts a genuine 3-client deadlock through the full Server/Client
   stack and checks the wound-retry-commit cycle is deterministic. *)

module Lock_mgr = Esm.Lock_mgr
module Server = Esm.Server
module Client = Esm.Client
module Page = Esm.Page
module Clock = Simclock.Clock

let p0 = Lock_mgr.Page_lock 0
let f0 = Lock_mgr.File_lock 0

let mode = Alcotest.testable (fun fmt m -> Format.pp_print_string fmt (match m with Lock_mgr.Shared -> "S" | Lock_mgr.Exclusive -> "X")) ( = )

(* --- no-wait path ------------------------------------------------- *)

let test_share () =
  let t = Lock_mgr.create () in
  Lock_mgr.acquire t ~txn:1 p0 Shared;
  Lock_mgr.acquire t ~txn:2 p0 Shared;
  Alcotest.(check int) "two grants" 2 (Lock_mgr.outstanding t);
  Alcotest.(check (option mode)) "txn1 holds S" (Some Lock_mgr.Shared) (Lock_mgr.held t ~txn:1 p0)

let test_conflict_payload () =
  let t = Lock_mgr.create () in
  Lock_mgr.acquire t ~txn:1 p0 Exclusive;
  Alcotest.check_raises "X/X conflicts, lowest holder named"
    (Lock_mgr.Conflict { resource = p0; holder = 1; requester = 2 })
    (fun () -> Lock_mgr.acquire t ~txn:2 p0 Exclusive);
  Alcotest.check_raises "S/X conflicts too"
    (Lock_mgr.Conflict { resource = p0; holder = 1; requester = 3 })
    (fun () -> Lock_mgr.acquire t ~txn:3 p0 Shared)

let test_upgrade () =
  let t = Lock_mgr.create () in
  Lock_mgr.acquire t ~txn:1 p0 Shared;
  Lock_mgr.acquire t ~txn:1 p0 Exclusive;
  Alcotest.(check (option mode)) "sole S holder upgrades" (Some Lock_mgr.Exclusive)
    (Lock_mgr.held t ~txn:1 p0);
  let t = Lock_mgr.create () in
  Lock_mgr.acquire t ~txn:1 p0 Shared;
  Lock_mgr.acquire t ~txn:2 p0 Shared;
  Alcotest.check_raises "upgrade blocked by a second S holder"
    (Lock_mgr.Conflict { resource = p0; holder = 2; requester = 1 })
    (fun () -> Lock_mgr.acquire t ~txn:1 p0 Exclusive)

let test_reentrant () =
  let t = Lock_mgr.create () in
  Lock_mgr.acquire t ~txn:1 f0 Exclusive;
  Lock_mgr.acquire t ~txn:1 f0 Exclusive;
  Lock_mgr.acquire t ~txn:1 f0 Shared;
  (* re-request in a weaker mode must not downgrade *)
  Alcotest.(check (option mode)) "idempotent, no downgrade" (Some Lock_mgr.Exclusive)
    (Lock_mgr.held t ~txn:1 f0);
  Alcotest.(check int) "one grant" 1 (Lock_mgr.outstanding t)

let test_release_all_untracked () =
  let t = Lock_mgr.create () in
  Lock_mgr.release_all t ~txn:99;
  Alcotest.(check int) "no waiters" 0 (Lock_mgr.waiting t);
  Alcotest.(check int) "no registry residue" 0 (Lock_mgr.tracked t);
  Lock_mgr.acquire t ~txn:1 p0 Shared;
  Lock_mgr.release_all t ~txn:1;
  Alcotest.(check int) "grant released" 0 (Lock_mgr.outstanding t);
  Alcotest.(check int) "registry cleared" 0 (Lock_mgr.tracked t)

(* --- blocking path, bare scheduler -------------------------------- *)

let wait ~what ~check = Sched.block_on ~what check
let wait_100 ~what ~check = Sched.block_on ~timeout_us:100.0 ~what check

(* Run named tasks under a fresh scheduler; return the outcomes. *)
let sched_run tasks =
  let clock = Clock.create () in
  let sched = Sched.create ~seed:5 ~clocks:[ clock ] () in
  List.iter (fun (name, f) -> Sched.spawn sched ~name f) tasks;
  Sched.run sched

let test_blocking_grant () =
  let t = Lock_mgr.create () in
  Lock_mgr.acquire t ~txn:1 p0 Exclusive;
  let a_done = ref false and b_got = ref false in
  let outcomes =
    sched_run
      [ ( "a"
        , fun () ->
            Sched.yield ();
            Lock_mgr.release_all t ~txn:1;
            a_done := true )
      ; ( "b"
        , fun () ->
            (* parks: X is held by txn 1 until task a releases *)
            Lock_mgr.acquire_blocking t ~txn:2 ~wait p0 Lock_mgr.Exclusive;
            Alcotest.(check bool) "granted only after release" true !a_done;
            b_got := true )
      ]
  in
  List.iter (fun (_, e) -> Alcotest.(check bool) "no deaths" true (e = None)) outcomes;
  Alcotest.(check bool) "waiter got the lock" true !b_got;
  Alcotest.(check (option mode)) "held X" (Some Lock_mgr.Exclusive) (Lock_mgr.held t ~txn:2 p0)

let p1 = Lock_mgr.Page_lock 1

(* Two transactions each hold one page and request the other's: the
   youngest (higher txn id) on the cycle is wounded. [young] says which
   side gets the high id, so we cover wound-the-requester and
   wound-the-parked-holder; [age] optionally backdates the young txn. *)
let two_txn_cycle ~young ?age () =
  let t = Lock_mgr.create () in
  let ta, tb = if young = `A then (5, 2) else (2, 5) in
  (match age with Some a -> Lock_mgr.set_age t ~txn:5 ~age:a | None -> ());
  Lock_mgr.acquire t ~txn:ta p0 Exclusive;
  Lock_mgr.acquire t ~txn:tb p1 Exclusive;
  let dead = ref [] in
  let record txn e = dead := (txn, e) :: !dead in
  let outcomes =
    sched_run
      [ ( "a"
        , fun () ->
            try Lock_mgr.acquire_blocking t ~txn:ta ~wait p1 Lock_mgr.Exclusive
            with Lock_mgr.Deadlock _ as e ->
              record ta e;
              Lock_mgr.release_all t ~txn:ta )
      ; ( "b"
        , fun () ->
            Sched.yield ();
            try Lock_mgr.acquire_blocking t ~txn:tb ~wait p0 Lock_mgr.Exclusive
            with Lock_mgr.Deadlock _ as e ->
              record tb e;
              Lock_mgr.release_all t ~txn:tb )
      ]
  in
  List.iter
    (fun (n, e) ->
      match e with
      | None -> ()
      | Some e -> Alcotest.failf "task %s died: %s" n (Printexc.to_string e))
    outcomes;
  !dead

let test_cycle_wounds_youngest_requester () =
  (* txn 5 requests last, is youngest: the requester itself aborts *)
  match two_txn_cycle ~young:`B () with
  | [ (5, Lock_mgr.Deadlock { victim; requester; cycle; _ }) ] ->
    Alcotest.(check int) "victim" 5 victim;
    Alcotest.(check int) "requester is the victim here" 5 requester;
    Alcotest.(check (list int)) "cycle members" [ 2; 5 ] (List.sort compare cycle)
  | other ->
    Alcotest.failf "expected exactly txn 5 wounded, got %d deadlocks" (List.length other)

let test_cycle_wounds_parked_holder () =
  (* txn 5 parked first; txn 2's request closes the cycle and the wound
     is delivered to 5 through its in-flight wait, not to the requester *)
  match two_txn_cycle ~young:`A () with
  | [ (5, Lock_mgr.Deadlock { victim; requester; cycle; _ }) ] ->
    Alcotest.(check int) "victim" 5 victim;
    Alcotest.(check int) "requester names the victim's own parked request" 5 requester;
    Alcotest.(check (list int)) "cycle members" [ 2; 5 ] (List.sort compare cycle)
  | other -> Alcotest.failf "expected exactly txn 5 wounded, got %d deadlocks" (List.length other)

let test_inherited_stamp_flips_victim () =
  (* Same shape as the previous test, but txn 5 carries the birth stamp
     of a prior incarnation (age 1 < 2): now txn 2 is the youngest. *)
  match two_txn_cycle ~young:`A ~age:1 () with
  | [ (2, Lock_mgr.Deadlock { victim; _ }) ] -> Alcotest.(check int) "victim" 2 victim
  | other -> Alcotest.failf "expected txn 2 wounded, got %d deadlocks" (List.length other)

let test_timeout_presumed_deadlock () =
  let t = Lock_mgr.create () in
  Lock_mgr.acquire t ~txn:1 p0 Exclusive;
  let got = ref None in
  let outcomes =
    sched_run
      [ ( "b"
        , fun () ->
            try Lock_mgr.acquire_blocking t ~txn:2 ~wait:wait_100 p0 Lock_mgr.Exclusive
            with Lock_mgr.Deadlock { victim; cycle; _ } -> got := Some (victim, cycle) )
      ]
  in
  List.iter (fun (_, e) -> Alcotest.(check bool) "no deaths" true (e = None)) outcomes;
  match !got with
  | None -> Alcotest.fail "timeout did not surface as Deadlock"
  | Some (victim, cycle) ->
    Alcotest.(check int) "victim is the waiter" 2 victim;
    Alcotest.(check (list int)) "presumed: no known cycle" [] cycle

(* --- scripted 3-client deadlock through the full stack ------------ *)

(* Three clients, three pages; client [c] X-locks page [c], barriers
   until all three hold, then requests page [(c+1) mod 3] — a perfect
   3-cycle. Exactly one wound fires; the victim's retry (with_txn_
   retrying) commits. Returns (commits, retry log) for determinism
   comparison. *)
let deadlock_scenario ~seed =
  let cm = Simclock.Cost_model.default in
  let clock = Clock.create () in
  let server = Server.create ~frames:64 ~clock ~cm () in
  let cls = Array.init 3 (fun _ -> Client.create ~frames:6 server) in
  let pages = Array.make 3 0 in
  Client.with_txn cls.(0) (fun () ->
      for i = 0 to 2 do
        let page_id, _frame = Client.new_page cls.(0) ~kind:Page.Small_obj in
        pages.(i) <- page_id
      done);
  let arrived = ref 0 in
  let commits = ref 0 in
  let retry_log = ref [] in
  let sched = Sched.create ~seed ~clocks:[ clock ] () in
  for c = 0 to 2 do
    Sched.spawn sched ~name:(Printf.sprintf "client%d" c) (fun () ->
        let cl = cls.(c) in
        Client.with_txn_retrying ~max_attempts:8
          ~on_retry:(fun ~attempt -> retry_log := (c, attempt) :: !retry_log)
          cl
          (fun () ->
            Client.lock_page cl pages.(c) Lock_mgr.Exclusive;
            incr arrived;
            (* one-shot barrier: monotonic, so a wounded retry that
               re-increments [arrived] sails through *)
            ignore (Sched.block_on ~what:"barrier" (fun () -> if !arrived >= 3 then Sched.Ready else Sched.Wait));
            Client.lock_page cl pages.((c + 1) mod 3) Lock_mgr.Exclusive);
        incr commits)
  done;
  let outcomes = Sched.run sched in
  List.iter
    (fun (n, e) ->
      match e with
      | None -> ()
      | Some e -> Alcotest.failf "%s died: %s" n (Printexc.to_string e))
    outcomes;
  (!commits, List.rev !retry_log)

let test_scripted_deadlock () =
  List.iter
    (fun seed ->
      let commits, retries = deadlock_scenario ~seed in
      Alcotest.(check int) (Printf.sprintf "seed %d: all three commit" seed) 3 commits;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: the cycle wounded someone" seed)
        true
        (List.length retries >= 1);
      let commits', retries' = deadlock_scenario ~seed in
      Alcotest.(check int) "rerun commits" commits commits';
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "seed %d: victim and retry pattern reproduce" seed)
        retries retries')
    [ 1; 2; 3 ]

let () =
  Alcotest.run "lock_mgr"
    [ ( "no-wait"
      , [ Alcotest.test_case "S/S shares" `Quick test_share
        ; Alcotest.test_case "conflict payload" `Quick test_conflict_payload
        ; Alcotest.test_case "upgrade" `Quick test_upgrade
        ; Alcotest.test_case "re-entrant" `Quick test_reentrant
        ; Alcotest.test_case "release_all without acquire" `Quick test_release_all_untracked ] )
    ; ( "blocking"
      , [ Alcotest.test_case "grant after release" `Quick test_blocking_grant
        ; Alcotest.test_case "cycle wounds youngest requester" `Quick
            test_cycle_wounds_youngest_requester
        ; Alcotest.test_case "cycle wounds parked holder" `Quick test_cycle_wounds_parked_holder
        ; Alcotest.test_case "inherited stamp flips victim" `Quick
            test_inherited_stamp_flips_victim
        ; Alcotest.test_case "timeout is presumed deadlock" `Quick test_timeout_presumed_deadlock
        ] )
    ; ( "end-to-end"
      , [ Alcotest.test_case "scripted 3-client deadlock" `Quick test_scripted_deadlock ] )
    ]
