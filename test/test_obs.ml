(* Qs_trace / Qs_metrics tests: span nesting, exact category totals
   against the simulated clock, Chrome trace_event well-formedness,
   zero allocation when disarmed, and armed-vs-disarmed clock
   bit-identity on a real OO7 run. *)

module Clock = Simclock.Clock
module Cat = Simclock.Category
module Sys_ = Harness.System
module Params = Oo7.Params

(* ------------------------------------------------------------------ *)
(* Span nesting and event stream shape.                                *)

let test_span_nesting () =
  let clock = Clock.create () in
  let trace = Qs_trace.create ~clock () in
  Qs_trace.arm trace;
  Qs_trace.span_begin clock ~cat:"t" "outer";
  Qs_trace.charge clock Cat.Interp 1.0;
  Qs_trace.with_span clock ~cat:"t" "inner" (fun () ->
    Qs_trace.charge clock Cat.Diff 2.0;
    Qs_trace.instant clock ~cat:"t" "tick");
  Qs_trace.charge clock Cat.Interp 3.0;
  Qs_trace.span_end clock;
  Qs_trace.disarm trace;
  let evs = Qs_trace.events trace in
  Alcotest.(check int) "event count" 8 (Array.length evs);
  let outer_id =
    match evs.(0) with
    | Qs_trace.Ev_begin { id; parent; name; _ } ->
      Alcotest.(check string) "outer name" "outer" name;
      Alcotest.(check int) "outer is a root span" (-1) parent;
      id
    | _ -> Alcotest.fail "expected Ev_begin first"
  in
  (match evs.(1) with
   | Qs_trace.Ev_charge { cat; span; n; _ } ->
     Alcotest.(check bool) "charge cat" true (cat = Cat.Interp);
     Alcotest.(check int) "charge n" 1 n;
     Alcotest.(check int) "charge lands in outer" outer_id span
   | _ -> Alcotest.fail "expected Ev_charge");
  let inner_id =
    match evs.(2) with
    | Qs_trace.Ev_begin { id; parent; name; _ } ->
      Alcotest.(check string) "inner name" "inner" name;
      Alcotest.(check int) "inner nests under outer" outer_id parent;
      id
    | _ -> Alcotest.fail "expected inner Ev_begin"
  in
  (match evs.(3) with
   | Qs_trace.Ev_charge { span; _ } ->
     Alcotest.(check int) "nested charge lands in inner" inner_id span
   | _ -> Alcotest.fail "expected nested Ev_charge");
  (match evs.(4) with
   | Qs_trace.Ev_instant { span; name; _ } ->
     Alcotest.(check string) "instant name" "tick" name;
     Alcotest.(check int) "instant lands in inner" inner_id span
   | _ -> Alcotest.fail "expected Ev_instant");
  (match evs.(5) with
   | Qs_trace.Ev_end { id; _ } -> Alcotest.(check int) "inner closed" inner_id id
   | _ -> Alcotest.fail "expected inner Ev_end");
  (match evs.(6) with
   | Qs_trace.Ev_charge { span; _ } ->
     Alcotest.(check int) "after with_span, back to outer" outer_id span
   | _ -> Alcotest.fail "expected post-inner Ev_charge");
  (match evs.(7) with
   | Qs_trace.Ev_end { id; _ } -> Alcotest.(check int) "outer closed" outer_id id
   | _ -> Alcotest.fail "expected Ev_end last")

let test_with_span_exception_safe () =
  let clock = Clock.create () in
  let trace = Qs_trace.create ~clock () in
  Qs_trace.arm trace;
  (try
     Qs_trace.with_span clock ~cat:"t" "doomed" (fun () -> raise Exit)
   with Exit -> ());
  Qs_trace.disarm trace;
  let evs = Qs_trace.events trace in
  Alcotest.(check int) "begin + end despite raise" 2 (Array.length evs);
  match (evs.(0), evs.(1)) with
  | Qs_trace.Ev_begin { id = b; _ }, Qs_trace.Ev_end { id = e; _ } ->
    Alcotest.(check int) "span closed" b e
  | _ -> Alcotest.fail "expected Ev_begin then Ev_end"

(* ------------------------------------------------------------------ *)
(* Category totals: replayed trace totals must equal the clock's own
   totals bit for bit, on a real OO7 run over the simulated store.     *)

let test_totals_match_clock () =
  let sys = Sys_.make_qs Params.tiny ~seed:1234 in
  let clock = Esm.Server.clock sys.Sys_.server in
  Clock.reset clock;
  let trace = Qs_trace.create ~clock () in
  Qs_trace.arm trace;
  let r = sys.Sys_.run ~op:"T1" ~seed:1234 ~hot_reps:1 in
  Qs_trace.disarm trace;
  Alcotest.(check bool) "run faulted" true (r.Sys_.cold_faults > 0);
  let m = Qs_metrics.of_trace trace in
  (match Qs_metrics.crosscheck m clock with
   | Ok () -> ()
   | Error errs -> Alcotest.fail (String.concat "; " errs));
  (* Bit-exact equality, not epsilon equality. *)
  List.iter
    (fun cat ->
      Alcotest.(check int64)
        (Cat.name cat ^ " bits")
        (Int64.bits_of_float (Clock.category_us clock cat))
        (Int64.bits_of_float (Qs_metrics.category_us m cat));
      Alcotest.(check int)
        (Cat.name cat ^ " events")
        (Clock.category_events clock cat)
        (Qs_metrics.category_events m cat))
    Cat.all;
  Alcotest.(check int64) "grand total bits"
    (Int64.bits_of_float (Clock.total_us clock))
    (Int64.bits_of_float (Qs_metrics.total_us m));
  (* The harness put the run under a txn span; its inclusive rollup
     covers everything charged during the run. *)
  match Qs_metrics.find_span m "txn:T1" with
  | None -> Alcotest.fail "txn:T1 span missing"
  | Some row ->
    Alcotest.(check int) "txn opened once" 1 row.Qs_metrics.sr_count;
    Alcotest.(check int64) "txn inclusive us == clock total"
      (Int64.bits_of_float (Clock.total_us clock))
      (Int64.bits_of_float (Array.fold_left ( +. ) 0.0 row.Qs_metrics.sr_us))

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export: well-formed JSON with the right shape.
   No JSON library in the image, so a minimal recursive-descent parser
   lives here; it accepts exactly the JSON grammar (RFC 8259) minus
   \u surrogate pairing, which the exporter never emits.               *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'; advance ()
         | Some '\\' -> Buffer.add_char b '\\'; advance ()
         | Some '/' -> Buffer.add_char b '/'; advance ()
         | Some 'b' -> Buffer.add_char b '\b'; advance ()
         | Some 'f' -> Buffer.add_char b '\012'; advance ()
         | Some 'n' -> Buffer.add_char b '\n'; advance ()
         | Some 'r' -> Buffer.add_char b '\r'; advance ()
         | Some 't' -> Buffer.add_char b '\t'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           (* BMP only; the exporter escapes only control chars. *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
         | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); J_obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); J_obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); J_arr [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); J_arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elems []
      end
    | Some '"' -> J_str (parse_string ())
    | Some 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
        pos := !pos + 4; J_bool true
      end else fail "bad literal"
    | Some 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
        pos := !pos + 5; J_bool false
      end else fail "bad literal"
    | Some 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
        pos := !pos + 4; J_null
      end else fail "bad literal"
    | Some ('-' | '0' .. '9') -> J_num (parse_number ())
    | _ -> fail "expected a value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function J_obj kvs -> List.assoc_opt k kvs | _ -> None

let test_chrome_json () =
  let sys = Sys_.make_qs Params.tiny ~seed:1234 in
  let clock = Esm.Server.clock sys.Sys_.server in
  Clock.reset clock;
  let trace = Qs_trace.create ~clock () in
  Qs_trace.arm trace;
  let _ = sys.Sys_.run ~op:"T1" ~seed:1234 ~hot_reps:0 in
  Qs_trace.disarm trace;
  let check_export ~include_charges =
    let s = Qs_trace.to_chrome ~include_charges trace in
    let j = try parse_json s with Bad_json m -> Alcotest.fail ("invalid JSON: " ^ m) in
    match member "traceEvents" j with
    | Some (J_arr evs) ->
      Alcotest.(check bool) "has events" true (List.length evs > 0);
      List.iter
        (fun e ->
          let str_member k =
            match member k e with Some (J_str v) -> v | _ -> Alcotest.fail ("missing " ^ k)
          in
          let num_member k =
            match member k e with Some (J_num v) -> v | _ -> Alcotest.fail ("missing " ^ k)
          in
          let ph = str_member "ph" in
          Alcotest.(check bool) "known phase" true
            (ph = "X" || ph = "i" || ph = "C" || ph = "M");
          if ph <> "M" then begin
            let ts = num_member "ts" in
            Alcotest.(check bool) "ts is a finite simulated us" true
              (Float.is_finite ts && ts >= 0.0);
            if ph = "X" then
              Alcotest.(check bool) "complete events carry dur" true
                (num_member "dur" >= 0.0)
          end;
          ignore (str_member "name"))
        evs;
      (* Spans survive the round trip: the txn span is present as a
         complete event. *)
      Alcotest.(check bool) "txn span exported" true
        (List.exists
           (fun e -> member "name" e = Some (J_str "txn:T1") && member "ph" e = Some (J_str "X"))
           evs)
    | _ -> Alcotest.fail "no traceEvents array"
  in
  check_export ~include_charges:false;
  check_export ~include_charges:true

(* ------------------------------------------------------------------ *)
(* Disarmed cost: the layer must not allocate on the charge path, and
   span/instant entry points must not allocate once no sink is armed.
   Compared against a control loop on the clock itself so boxing noise
   from the measurement cancels out.                                   *)

let minor_words_of f =
  let before = Gc.minor_words () in
  f ();
  let after = Gc.minor_words () in
  after -. before

let test_disarmed_no_alloc () =
  let clock = Clock.create () in
  let iters = 10_000 in
  (* Warm up so one-time setup does not count. *)
  Qs_trace.charge clock Cat.Interp 0.5;
  Clock.charge clock Cat.Interp 0.5;
  Qs_trace.span_begin clock ~cat:"t" "warm";
  Qs_trace.span_end clock;
  Qs_trace.instant clock ~cat:"t" "warm";
  let control =
    minor_words_of (fun () ->
      for _ = 1 to iters do
        Clock.charge clock Cat.Interp 0.5
      done)
  in
  let traced =
    minor_words_of (fun () ->
      for _ = 1 to iters do
        Qs_trace.charge clock Cat.Interp 0.5
      done)
  in
  (* A single boxed float per call would already cost >= 3 words/call
     (30k words over the loop); allow only measurement noise. *)
  Alcotest.(check bool)
    (Printf.sprintf "disarmed charge allocates nothing (control %.0f, traced %.0f)" control traced)
    true
    (traced -. control < 100.0);
  let spans =
    minor_words_of (fun () ->
      for _ = 1 to iters do
        Qs_trace.span_begin clock ~cat:"t" "hot";
        Qs_trace.span_end clock;
        Qs_trace.instant clock ~cat:"t" "hot"
      done)
  in
  Alcotest.(check bool)
    (Printf.sprintf "disarmed span/instant allocate nothing (%.0f words)" spans)
    true (spans < 100.0);
  Alcotest.(check bool) "enabled is false when disarmed" false (Qs_trace.enabled clock)

(* ------------------------------------------------------------------ *)
(* Arming must not change what is simulated: two identically built
   systems, one traced and one not, end with bit-identical clocks.     *)

let test_armed_vs_disarmed_clock () =
  let run ~traced =
    let sys = Sys_.make_qs Params.tiny ~seed:1234 in
    let clock = Esm.Server.clock sys.Sys_.server in
    Clock.reset clock;
    let trace = if traced then Some (Qs_trace.create ~clock ()) else None in
    (match trace with Some t -> Qs_trace.arm t | None -> ());
    let _ = sys.Sys_.run ~op:"T6" ~seed:1234 ~hot_reps:1 in
    (match trace with Some t -> Qs_trace.disarm t | None -> ());
    clock
  in
  let armed = run ~traced:true in
  let plain = run ~traced:false in
  List.iter
    (fun cat ->
      Alcotest.(check int64)
        (Cat.name cat ^ " us bits")
        (Int64.bits_of_float (Clock.category_us plain cat))
        (Int64.bits_of_float (Clock.category_us armed cat));
      Alcotest.(check int)
        (Cat.name cat ^ " events")
        (Clock.category_events plain cat)
        (Clock.category_events armed cat))
    Cat.all

let () =
  Alcotest.run "obs"
    [ ( "trace"
      , [ Alcotest.test_case "span nesting" `Quick test_span_nesting
        ; Alcotest.test_case "with_span exception safety" `Quick test_with_span_exception_safe ] )
    ; ( "metrics"
      , [ Alcotest.test_case "totals match clock bit-exactly" `Quick test_totals_match_clock ] )
    ; ("chrome", [ Alcotest.test_case "trace_event JSON" `Quick test_chrome_json ])
    ; ( "cost"
      , [ Alcotest.test_case "disarmed allocates nothing" `Quick test_disarmed_no_alloc
        ; Alcotest.test_case "armed vs disarmed clock identical" `Quick
            test_armed_vs_disarmed_clock ] ) ]
